//! Relation catalog: schemas inferred from an NDlog program.
//!
//! The catalog records, for every relation mentioned by a program, its arity,
//! the column that carries the location specifier, its primary-key columns
//! (from `materialize` declarations; defaulting to *all* columns, i.e. set
//! semantics) and whether the relation is a base (extensional) or derived
//! (intensional) relation.

use crate::error::{Result, RuntimeError};
use ndlog::{Predicate, Program};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema of a single relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Relation name.
    pub name: String,
    /// Number of attributes.
    pub arity: usize,
    /// Zero-based index of the location-specifier column.
    pub location_col: usize,
    /// Zero-based primary-key column indices. Tuples agreeing on these columns
    /// replace each other (update-in-place semantics of `materialize`).
    pub key_cols: Vec<usize>,
    /// True when no rule derives this relation (it is populated externally).
    pub is_base: bool,
    /// Tuple lifetime in (simulated) seconds; `None` = infinite.
    pub lifetime: Option<f64>,
}

impl RelationSchema {
    /// Whether the key covers every column (pure set semantics).
    pub fn set_semantics(&self) -> bool {
        self.key_cols.len() == self.arity
    }
}

/// The catalog of every relation used by a program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    relations: BTreeMap<String, RelationSchema>,
}

impl Catalog {
    /// Build a catalog from a validated program.
    ///
    /// Fails when a relation is used with inconsistent arity or with the
    /// location specifier in different columns.
    pub fn from_program(program: &Program) -> Result<Catalog> {
        let mut catalog = Catalog::default();
        let derived = program.derived_relations();

        let mut record = |pred: &Predicate| -> Result<()> {
            let loc = pred.location_index().ok_or_else(|| {
                RuntimeError::schema(format!(
                    "relation `{}` used without a location specifier",
                    pred.relation
                ))
            })?;
            let entry = catalog.relations.entry(pred.relation.clone());
            match entry {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(RelationSchema {
                        name: pred.relation.clone(),
                        arity: pred.arity(),
                        location_col: loc,
                        key_cols: (0..pred.arity()).collect(),
                        is_base: !derived.contains(&pred.relation),
                        lifetime: None,
                    });
                }
                std::collections::btree_map::Entry::Occupied(o) => {
                    let existing = o.get();
                    if existing.arity != pred.arity() {
                        return Err(RuntimeError::schema(format!(
                            "relation `{}` used with arity {} and {}",
                            pred.relation,
                            existing.arity,
                            pred.arity()
                        )));
                    }
                    if existing.location_col != loc {
                        return Err(RuntimeError::schema(format!(
                            "relation `{}` has its location specifier in different columns",
                            pred.relation
                        )));
                    }
                }
            }
            Ok(())
        };

        for rule in &program.rules {
            record(&rule.head)?;
            for atom in rule.body_atoms() {
                record(atom)?;
            }
        }

        // Apply materialize declarations (keys are 1-based in source).
        for m in &program.materializations {
            if let Some(schema) = catalog.relations.get_mut(&m.relation) {
                schema.key_cols = m.keys.iter().map(|k| k - 1).collect();
                schema.lifetime = m.lifetime;
            } else {
                // Materialized relation never used by a rule: still register it
                // so the platform can insert base tuples into it.
                catalog.relations.insert(
                    m.relation.clone(),
                    RelationSchema {
                        name: m.relation.clone(),
                        arity: *m.keys.iter().max().unwrap_or(&1),
                        location_col: 0,
                        key_cols: m.keys.iter().map(|k| k - 1).collect(),
                        is_base: true,
                        lifetime: m.lifetime,
                    },
                );
            }
        }
        Ok(catalog)
    }

    /// Look up a relation schema.
    pub fn schema(&self, relation: &str) -> Option<&RelationSchema> {
        self.relations.get(relation)
    }

    /// Iterate over all schemas in name order.
    pub fn schemas(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Register an externally defined relation (used by the provenance layer
    /// for its `prov` / `ruleExec` tables and by tests).
    pub fn register(&mut self, schema: RelationSchema) {
        self.relations.insert(schema.name.clone(), schema);
    }

    /// Number of relations known.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog::parse_program;

    const MINCOST: &str = "materialize(link, infinity, infinity, keys(1,2)).\n\
         materialize(cost, infinity, infinity, keys(1,2,3)).\n\
         materialize(minCost, infinity, infinity, keys(1,2)).\n\
         r1 cost(@S,D,C) :- link(@S,D,C).\n\
         r2 cost(@S,D,C) :- link(@S,Z,C1), minCost(@Z,D,C2), C := C1 + C2.\n\
         r3 minCost(@S,D,min<C>) :- cost(@S,D,C).";

    #[test]
    fn builds_mincost_catalog() {
        let program = parse_program(MINCOST).unwrap();
        let catalog = Catalog::from_program(&program).unwrap();
        let link = catalog.schema("link").unwrap();
        assert!(link.is_base);
        assert_eq!(link.arity, 3);
        assert_eq!(link.key_cols, vec![0, 1]);
        let cost = catalog.schema("cost").unwrap();
        assert!(!cost.is_base);
        assert!(cost.set_semantics());
        let min_cost = catalog.schema("minCost").unwrap();
        assert_eq!(min_cost.key_cols, vec![0, 1]);
        assert_eq!(catalog.len(), 3);
    }

    #[test]
    fn default_keys_are_all_columns() {
        let program = parse_program("r1 reach(@S,D) :- link(@S,D,C).").unwrap();
        let catalog = Catalog::from_program(&program).unwrap();
        assert_eq!(catalog.schema("reach").unwrap().key_cols, vec![0, 1]);
        assert_eq!(catalog.schema("link").unwrap().key_cols, vec![0, 1, 2]);
    }

    #[test]
    fn rejects_inconsistent_arity() {
        let program = parse_program(
            "r1 a(@X) :- link(@X,Y).\n\
             r2 b(@X) :- link(@X,Y,Z).",
        )
        .unwrap();
        assert!(Catalog::from_program(&program).is_err());
    }

    #[test]
    fn rejects_moving_location_column() {
        let program = parse_program(
            "r1 a(@X,Y) :- link(@X,Y).\n\
             r2 a(X,@Y) :- link(@Y,X).",
        )
        .unwrap();
        assert!(Catalog::from_program(&program).is_err());
    }

    #[test]
    fn lifetime_is_propagated() {
        let program = parse_program(
            "materialize(hello, 30, infinity, keys(1)).\n\
             r1 seen(@N) :- hello(@N).",
        )
        .unwrap();
        let catalog = Catalog::from_program(&program).unwrap();
        assert_eq!(catalog.schema("hello").unwrap().lifetime, Some(30.0));
    }
}
