//! The per-node incremental evaluation engine.
//!
//! A [`NodeEngine`] holds one node's partition of every relation and evaluates
//! the localized rules of a [`CompiledProgram`] using *generation-based
//! semi-naive* evaluation. Each [`NodeEngine::run`] call drains the delta
//! queue in generations: all currently queued insertions and deletions are
//! applied to the tables first (sequentially, in stream order), then the
//! surviving membership changes are expanded into rule-evaluation trigger
//! tasks. Monotonic tasks are pure reads against the now-frozen tables, so
//! the morsel-driven dispatcher (module `morsel`) can fan them out across
//! the shared worker pool (when [`EngineConfig::fixpoint_workers`] > 1 and
//! the generation clears the dispatch threshold); their candidate firings are
//! merged back on one thread in sequence order, which is where all mutation —
//! derivation emission, aggregate recomputation, negation reconciliation,
//! cascade deletion — happens. Derived tuples feed the next generation's
//! queue until a local fixpoint is reached, and the output — tables,
//! [`EngineStats`], outbox batches, provenance firings — is bit-identical at
//! every worker count. Derived tuples whose home (location attribute) is another node are
//! not stored locally; instead the engine records them in an *outbox*,
//! coalesces the implied sends (an insert/delete pair for the same tuple and
//! derivation within one round cancels; identical re-emissions dedupe) and
//! flushes them as per-destination [`DeltaBatch`]es — fixed-width
//! [`DeltaRecord`] bodies plus a shared dictionary header carrying each
//! batch's first-use strings — for the network layer (crate `simnet`,
//! orchestrated by the `nettrails` platform) to deliver.
//!
//! ## Incremental deletions
//!
//! Every derived tuple carries the derivations that support it
//! ([`crate::store`]). When a tuple disappears, the engine looks up — through
//! the reverse-dependency index — every derivation that used it, retracts
//! those derivations, and cascades. This is the counting form of incremental
//! view maintenance; it is exact for the protocol programs shipped with
//! NetTrails (their recursion goes through strictly increasing costs or
//! loop-suppressed paths, so no tuple can support itself). Aggregate rules are
//! maintained by group recomputation, and rules containing negation are
//! maintained by per-rule reconciliation.
//!
//! ## Provenance hooks
//!
//! Every derivation added or retracted is reported as a [`Firing`]; the
//! `provenance` crate turns firings into the distributed `prov` / `ruleExec`
//! relations of ExSPAN. Base-tuple insertions are reported too so the
//! provenance graph contains the base vertices.

use crate::compile::{CompiledProgram, CompiledRule};
use crate::eval::{literal_value, Bindings};
use crate::morsel::{self, Candidate, EvalContext, MonoTask};
#[cfg(test)]
use crate::store::BASE_RULE;
use crate::store::{base_rule_sym, Database, Derivation, Membership, TableBacking};
use crate::tuple::{Delta, Tuple, TupleId};
use crate::value::{Addr, Sym, Value};
use ndlog::{AggregateFunc, Literal, Predicate, Term};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Prefix for the internal outbox tables that track derivations whose head
/// lives on another node.
pub const OUTBOX_PREFIX: &str = "__out::";

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The node this engine runs on (its address / name).
    pub node: Addr,
    /// Safety cap on the number of deltas processed by a single [`NodeEngine::run`]
    /// call; prevents a diverging program from hanging the simulator.
    pub max_deltas_per_run: usize,
    /// Use the precomputed join plans' bound columns to probe secondary
    /// indexes (the default). When disabled every join step scans its whole
    /// table — kept as the reference path for equivalence tests and as the
    /// baseline the index regression tests compare against.
    pub use_join_indexes: bool,
    /// Worker-pool parallelism for the morsel-driven fixpoint: the maximum
    /// number of [`nt_pool`] workers a generation's monotonic trigger tasks
    /// are spread across. `1` (the default) evaluates every generation
    /// inline with zero pool traffic; any value produces bit-identical
    /// output (see module `morsel` for the determinism discipline).
    pub fixpoint_workers: usize,
    /// Minimum number of trigger tasks in a generation before the engine
    /// dispatches to the pool at all. Below it the per-job overhead dwarfs
    /// the work (the same ≥64 heuristic the sharded provenance apply phase
    /// uses), so small generations run inline even when
    /// [`EngineConfig::fixpoint_workers`] > 1.
    pub fixpoint_dispatch_threshold: usize,
    /// Store tables column-major (the default). When disabled the engine
    /// keeps the row-major reference layout — used by the equivalence
    /// proptests and the `vectorized_joins` benchmark, which prove both
    /// backings bit-identical and measure the wall-clock gap.
    pub columnar_storage: bool,
}

/// Default for [`EngineConfig::fixpoint_dispatch_threshold`].
pub const FIXPOINT_DISPATCH_THRESHOLD: usize = 64;

impl EngineConfig {
    /// Config for a node with default limits.
    pub fn new(node: impl Into<Addr>) -> Self {
        EngineConfig {
            node: node.into(),
            max_deltas_per_run: 1_000_000,
            use_join_indexes: true,
            fixpoint_workers: 1,
            fixpoint_dispatch_threshold: FIXPOINT_DISPATCH_THRESHOLD,
            columnar_storage: true,
        }
    }

    /// Same config with index-backed probing switched off (reference
    /// full-scan evaluation).
    pub fn without_indexes(mut self) -> Self {
        self.use_join_indexes = false;
        self
    }

    /// Same config evaluating each generation's monotonic trigger tasks with
    /// up to `workers` pool workers (clamped to at least 1).
    pub fn with_fixpoint_workers(mut self, workers: usize) -> Self {
        self.fixpoint_workers = workers.max(1);
        self
    }

    /// Same config with a custom dispatch threshold (`0` forces every
    /// parallel-configured generation through the pool — used by the
    /// equivalence tests to exercise the dispatch path on tiny inputs).
    pub fn with_fixpoint_dispatch_threshold(mut self, threshold: usize) -> Self {
        self.fixpoint_dispatch_threshold = threshold;
        self
    }

    /// Same config storing tables in the row-major reference layout instead
    /// of the columnar default.
    pub fn with_row_storage(mut self) -> Self {
        self.columnar_storage = false;
        self
    }
}

/// Counters describing the work an engine has done. Used by the maintenance
/// overhead and incremental-vs-recompute experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Deltas dequeued and applied.
    pub deltas_processed: u64,
    /// Rule firings (derivations created).
    pub rule_firings: u64,
    /// Derivations retracted.
    pub retractions: u64,
    /// Tuples handed to the network layer.
    pub tuples_sent: u64,
    /// Estimated bytes handed to the network layer (dictionary headers +
    /// record bodies of every shipped batch). The engine is the single
    /// source of truth for protocol payload bytes; the platform charges the
    /// network with exactly these sizes.
    pub bytes_sent: u64,
    /// The dictionary-header share of `bytes_sent`: interned strings shipped
    /// once per (destination, first use).
    pub dict_bytes_sent: u64,
    /// Candidate tuples actually examined while joining body atoms,
    /// checking negated atoms and recomputing aggregate groups. With
    /// index-backed probing this counts only the tuples the probe kernel
    /// yields — the anchor posting list already filtered on every bound
    /// column — and is identical across storage backings; with scans it
    /// counts every stored tuple visited.
    pub join_probes: u64,
    /// Aggregate group recomputations.
    pub agg_recomputes: u64,
}

/// A rule-execution event, reported for provenance capture. Every identifier
/// in a firing is interned, so the provenance layer consumes fixed-width
/// records without string traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Firing {
    /// Rule name ([`crate::store::BASE_RULE`] for base-tuple events).
    pub rule: Sym,
    /// Node where the rule executed (always this engine's node).
    pub node: Addr,
    /// The derived (or retracted) head tuple.
    pub head: Tuple,
    /// The node where the head tuple lives.
    pub head_home: Addr,
    /// Identifiers of the body tuples, in body order.
    pub inputs: Vec<TupleId>,
    /// The body tuples themselves (present for insert firings; retractions
    /// carry only the identifiers).
    pub input_tuples: Vec<Tuple>,
    /// True for a derivation, false for a retraction.
    pub insert: bool,
}

impl Firing {
    /// The shard that owns the head tuple's home store under an `S`-way
    /// partitioning of the provenance arena — the routing tag a sharded
    /// maintenance engine partitions the firing stream by. Stable name hash
    /// ([`crate::shard_route`]), so every layer agrees on placement.
    pub fn home_shard(&self, shards: usize) -> usize {
        crate::shard_route(self.head_home, shards)
    }

    /// The shard that owns the executing node's store (where the `ruleExec`
    /// half of this firing must be applied). When it differs from
    /// [`Firing::home_shard`] the maintenance entry crosses shards.
    pub fn exec_shard(&self, shards: usize) -> usize {
        crate::shard_route(self.node, shards)
    }
}

/// A delta destined for another node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteDelta {
    /// Destination node.
    pub dest: Addr,
    /// The insertion or deletion to apply there.
    pub delta: Delta,
    /// The derivation that justifies it (the receiving engine stores it).
    pub derivation: Derivation,
}

/// One record inside a [`DeltaBatch`]: the shipped change plus the derivation
/// that justifies it. Every identifier in the body is a fixed-width interned
/// handle; the strings behind the handles travel in the batch's dictionary
/// header the first time the destination sees them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRecord {
    /// The insertion or deletion to apply at the destination.
    pub delta: Delta,
    /// The derivation that justifies it (the receiving engine stores it).
    pub derivation: Derivation,
}

impl DeltaRecord {
    /// Wire size of the record body: a 1-byte polarity tag, the tuple in the
    /// interned encoding and the derivation that travels with it.
    pub fn wire_size(&self) -> usize {
        1 + self.delta.tuple().wire_size() + self.derivation.wire_size()
    }
}

/// All deltas an engine ships to one destination in one round, plus the
/// dictionary header resolving every interned handle the destination has not
/// been sent before. The network layer prices a batch as
/// `header_bytes + Σ record bytes` and charges one per-message framing header
/// for the whole batch instead of one per tuple — dictionary entries are
/// charged exactly once per (destination, first use), like a snapshot's
/// `dict_bytes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaBatch {
    /// Destination node.
    pub dest: Addr,
    /// Dictionary entries (interned strings) first shipped to `dest` by this
    /// batch, in first-use order.
    pub dict: Vec<String>,
    /// The shipped records, in emission order.
    pub records: Vec<DeltaRecord>,
}

impl DeltaBatch {
    /// Bytes of the shared dictionary header: a 4-byte id plus a
    /// length-prefixed string per entry (the same pricing as
    /// `InternerSnapshot::wire_size`).
    pub fn header_bytes(&self) -> usize {
        self.dict
            .iter()
            .map(|s| crate::dict_entry_wire_size(s))
            .sum()
    }

    /// Bytes of the record bodies.
    pub fn body_bytes(&self) -> usize {
        self.records.iter().map(DeltaRecord::wire_size).sum()
    }

    /// Total priced payload: dictionary header + fixed-width record bodies.
    pub fn wire_size(&self) -> usize {
        self.header_bytes() + self.body_bytes()
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the batch carries no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Everything produced by one [`NodeEngine::run`] call.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StepOutput {
    /// Per-destination batches of tuples to ship to other nodes (one batch
    /// per destination per round).
    pub sends: Vec<DeltaBatch>,
    /// Rule execution events (for provenance capture).
    pub firings: Vec<Firing>,
    /// Local membership changes (insertions / deletions of visible tuples).
    pub local_changes: Vec<Delta>,
    /// True when the run hit the delta cap before reaching a fixpoint.
    pub truncated: bool,
}

impl StepOutput {
    /// Merge another output into this one (used by drivers that call `run`
    /// repeatedly).
    pub fn merge(&mut self, other: StepOutput) {
        self.sends.extend(other.sends);
        self.firings.extend(other.firings);
        self.local_changes.extend(other.local_changes);
        self.truncated |= other.truncated;
    }
}

#[derive(Debug, Clone)]
enum WorkItem {
    Add {
        tuple: Tuple,
        derivation: Derivation,
    },
    Remove {
        tuple: Tuple,
        derivation: Derivation,
    },
}

/// A membership transition observed while applying one generation's deltas,
/// recorded in stream order. The apply phase only mutates tables; everything
/// the old pipelined engine did *at* the transition — firings, local-change
/// reporting, rule triggering, cascade deletion — replays from these events
/// during the merge phase, at the same sequence position.
#[derive(Debug, Clone)]
enum GenEvent {
    /// A base tuple gained or lost a derivation (reported to provenance).
    BaseFire { tuple: Tuple, insert: bool },
    /// A tuple became visible.
    Appeared(Tuple),
    /// A tuple lost its last derivation (cascade runs at merge time).
    Disappeared(Tuple),
}

/// One rule trigger planned for an [`GenEvent::Appeared`] event. `Mono`
/// triggers are evaluated (possibly in parallel) before the merge phase and
/// consume their precomputed candidates in task order; aggregate and
/// negation triggers always run sequentially in the merge.
#[derive(Debug, Clone, Copy)]
enum TriggerOp {
    /// Consume the next precomputed `(candidates, probes)` result.
    Mono,
    /// Recompute the aggregate group(s) of this rule for the event's tuple.
    Aggregate { rule_idx: usize },
    /// Reconcile a rule containing negation (at most once per generation —
    /// the tables it reads are frozen, so repeats compute the same result).
    Reconcile { rule_idx: usize },
}

/// The per-node incremental evaluator. See the module documentation.
#[derive(Debug, Clone)]
pub struct NodeEngine {
    config: EngineConfig,
    program: Arc<CompiledProgram>,
    db: Database,
    queue: VecDeque<WorkItem>,
    /// (rule index, group key) -> current aggregate head tuple + derivation.
    agg_state: HashMap<(usize, Vec<Value>), (Tuple, Derivation)>,
    /// Memoized `relation -> __out::relation` symbols.
    outbox_syms: HashMap<Sym, Sym>,
    /// Sends queued during the current run, coalesced into per-destination
    /// batches when the run flushes. A slot is `None` when a later opposite
    /// delta for the same (dest, tuple, derivation) cancelled it.
    pending_sends: Vec<Option<RemoteDelta>>,
    /// Live pending slots per (dest, tuple id) — the coalescing index that
    /// guarantees a (tuple, derivation) pair is shipped at most once per
    /// round. Each slot list holds one entry per distinct pending
    /// derivation of that tuple.
    pending_index: HashMap<(Addr, TupleId), Vec<usize>>,
    /// Interned strings (raw pool ids) already shipped to each destination;
    /// a batch's dictionary header carries only the strings its destination
    /// has never seen.
    dict_sent: HashMap<Addr, HashSet<u32>>,
    stats: EngineStats,
}

impl NodeEngine {
    /// Create an engine for `config.node` executing `program`.
    pub fn new(program: Arc<CompiledProgram>, config: EngineConfig) -> Self {
        let backing = if config.columnar_storage {
            TableBacking::Columnar
        } else {
            TableBacking::Row
        };
        let db = Database::with_backing(program.catalog.schemas().cloned(), backing);
        NodeEngine {
            config,
            program,
            db,
            queue: VecDeque::new(),
            agg_state: HashMap::new(),
            outbox_syms: HashMap::new(),
            pending_sends: Vec::new(),
            pending_index: HashMap::new(),
            dict_sent: HashMap::new(),
            stats: EngineStats::default(),
        }
    }

    /// The node name this engine runs on.
    pub fn node(&self) -> &str {
        self.config.node.as_str()
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The node's database (read-only view).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Work counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// True when deltas are queued but not yet processed.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Queue the insertion of a base (extensional) tuple at this node.
    pub fn insert_base(&mut self, tuple: Tuple) {
        let derivation = Derivation::base(self.config.node);
        self.queue.push_back(WorkItem::Add { tuple, derivation });
    }

    /// Queue the deletion of a base tuple previously inserted at this node.
    pub fn delete_base(&mut self, tuple: Tuple) {
        let derivation = Derivation::base(self.config.node);
        self.queue.push_back(WorkItem::Remove { tuple, derivation });
    }

    /// Queue a delta received from another node.
    pub fn apply_remote(&mut self, delta: Delta, derivation: Derivation) {
        match delta {
            Delta::Insert(tuple) => self.queue.push_back(WorkItem::Add { tuple, derivation }),
            Delta::Delete(tuple) => self.queue.push_back(WorkItem::Remove { tuple, derivation }),
        }
    }

    /// Process queued deltas to a local fixpoint, one generation at a time:
    /// everything queued when a generation starts is applied and evaluated
    /// together, and the derivations it emits form the next generation.
    pub fn run(&mut self) -> StepOutput {
        let mut out = StepOutput::default();
        let mut budget = self.config.max_deltas_per_run;
        while !self.queue.is_empty() {
            if budget == 0 {
                out.truncated = true;
                break;
            }
            let take = self.queue.len().min(budget);
            budget -= take;
            self.stats.deltas_processed += take as u64;
            let generation: Vec<WorkItem> = self.queue.drain(..take).collect();
            self.process_generation(generation, &mut out);
        }
        self.flush_sends(&mut out);
        out
    }

    /// Evaluate one generation. Four phases:
    ///
    /// * **apply** — every delta performs its membership transition
    ///   (sequentially, in stream order); transitions are recorded as
    ///   [`GenEvent`]s and the tables do not change again until the merge
    ///   emits into the *next* generation's queue.
    /// * **plan** — each surviving `Appeared` event expands into its rule
    ///   triggers. Insertions whose tuple died later in the same generation
    ///   are skipped: their net effect on the frozen tables is nothing, so
    ///   the rules they would have fired transiently never observe them.
    /// * **evaluate** — the monotonic trigger tasks are pure reads against
    ///   the frozen tables; [`morsel::evaluate_tasks`] runs them inline or
    ///   fans them out across the worker pool, returning candidates in task
    ///   order either way.
    /// * **merge** — events replay in sequence order on this thread:
    ///   firings and local changes are reported, candidates commit through
    ///   [`Self::emit_derivation`], aggregates recompute, negation rules
    ///   reconcile (once per generation) and disappearances cascade.
    fn process_generation(&mut self, items: Vec<WorkItem>, out: &mut StepOutput) {
        let mut events: Vec<GenEvent> = Vec::new();
        for item in items {
            match item {
                WorkItem::Add { tuple, derivation } => {
                    self.apply_add(tuple, derivation, &mut events)
                }
                WorkItem::Remove { tuple, derivation } => {
                    self.apply_remove(tuple, derivation, &mut events)
                }
            }
        }
        let skip = self.net_events(&events);

        let mut ops: Vec<Vec<TriggerOp>> = Vec::with_capacity(events.len());
        let mut tasks: Vec<MonoTask> = Vec::new();
        for (idx, event) in events.iter().enumerate() {
            ops.push(match event {
                GenEvent::Appeared(tuple) if !skip[idx] => {
                    self.plan_insert_triggers(tuple, &mut tasks)
                }
                _ => Vec::new(),
            });
        }

        let evaluated = {
            let ctx = EvalContext {
                db: &self.db,
                program: self.program.as_ref(),
                use_join_indexes: self.config.use_join_indexes,
            };
            morsel::evaluate_tasks(
                &ctx,
                &tasks,
                self.config.fixpoint_workers,
                self.config.fixpoint_dispatch_threshold,
            )
        };

        let mut results = evaluated.into_iter();
        let mut reconciled: HashSet<usize> = HashSet::new();
        for ((idx, event), event_ops) in events.into_iter().enumerate().zip(ops) {
            if skip[idx] {
                continue;
            }
            match event {
                GenEvent::BaseFire { tuple, insert } => out.firings.push(Firing {
                    rule: base_rule_sym(),
                    node: self.config.node,
                    head: tuple.clone(),
                    head_home: self.config.node,
                    inputs: Vec::new(),
                    input_tuples: Vec::new(),
                    insert,
                }),
                GenEvent::Appeared(tuple) => {
                    out.local_changes.push(Delta::Insert(tuple.clone()));
                    for op in event_ops {
                        match op {
                            TriggerOp::Mono => {
                                let (candidates, probes) =
                                    results.next().expect("one result per planned task");
                                self.stats.join_probes += probes;
                                for candidate in candidates {
                                    self.commit_candidate(candidate, out);
                                }
                            }
                            TriggerOp::Aggregate { rule_idx } => {
                                self.recompute_aggregate_for(rule_idx, &tuple, out)
                            }
                            TriggerOp::Reconcile { rule_idx } => {
                                if reconciled.insert(rule_idx) {
                                    self.reconcile_rule(rule_idx, out);
                                }
                            }
                        }
                    }
                }
                GenEvent::Disappeared(tuple) => {
                    out.local_changes.push(Delta::Delete(tuple.clone()));
                    self.on_disappear(&tuple, &mut reconciled, out);
                }
            }
        }
    }

    /// Is `tuple` (by exact identity) still stored at the end of the apply
    /// phase? Filters out insertions that were deleted — or displaced by a
    /// keyed replacement — later in the same generation.
    fn is_live(&self, tuple: &Tuple) -> bool {
        self.db
            .table_sym(tuple.relation)
            .and_then(|table| table.get(tuple))
            .is_some_and(|stored| stored.id() == tuple.id())
    }

    /// Decide which membership events of a generation are *transient churn*
    /// and must not be replayed. Transitions for one tuple id strictly
    /// alternate (appear / disappear / appear / …), so the generation's net
    /// effect on the tuple follows from its first event and its final
    /// liveness:
    ///
    /// * **present before, present after** (delete + re-derive, possibly
    ///   with a different derivation) — every event is skipped. Downstream
    ///   derivations reference the tuple *id*, which never stopped
    ///   resolving, so neither the disappearance cascade nor the insertion
    ///   triggers may run; running the cascade here is not just wasteful but
    ///   wrong, because the frozen-table aggregate/negation recomputation
    ///   correctly concludes "no change" and would never re-emit what the
    ///   cascade retracted.
    /// * **absent before, present after** — nets to the final appearance.
    /// * **present before, absent after** — nets to the first
    ///   disappearance.
    /// * **absent before, absent after** (insert + delete of a previously
    ///   unknown tuple) — nets to nothing: the tuple never fired a rule and
    ///   has no dependents, so there is nothing to retract.
    ///
    /// Tuples with a single membership event keep it (a lone appearance is
    /// final by alternation; a lone disappearance likewise). `BaseFire`
    /// events are never skipped — base derivations really were added and
    /// removed, and provenance capture tracks both sides.
    fn net_events(&self, events: &[GenEvent]) -> Vec<bool> {
        let mut skip = vec![false; events.len()];
        let mut per_id: HashMap<TupleId, (bool, Vec<usize>)> = HashMap::new();
        for (idx, event) in events.iter().enumerate() {
            match event {
                GenEvent::Appeared(t) => per_id
                    .entry(t.id())
                    .or_insert_with(|| (false, Vec::new()))
                    .1
                    .push(idx),
                GenEvent::Disappeared(t) => per_id
                    .entry(t.id())
                    .or_insert_with(|| (true, Vec::new()))
                    .1
                    .push(idx),
                GenEvent::BaseFire { .. } => {}
            }
        }
        for (first_is_disappear, idxs) in per_id.into_values() {
            if idxs.len() < 2 {
                continue;
            }
            let live = match &events[idxs[0]] {
                GenEvent::Appeared(t) | GenEvent::Disappeared(t) => self.is_live(t),
                GenEvent::BaseFire { .. } => unreachable!("only membership events are indexed"),
            };
            let keep = match (first_is_disappear, live) {
                // Present before and after: pure churn, nothing survives.
                (true, true) => None,
                // New tuple: the final appearance stands for all of them.
                (false, true) => idxs
                    .iter()
                    .rev()
                    .find(|&&i| matches!(events[i], GenEvent::Appeared(_)))
                    .copied(),
                // Deleted tuple: the first disappearance cascades once.
                (true, false) => Some(idxs[0]),
                // Appeared and died unseen: nothing to replay.
                (false, false) => None,
            };
            for &idx in &idxs {
                skip[idx] = keep != Some(idx);
            }
        }
        skip
    }

    /// Expand an appeared tuple into its trigger ops (in the program's
    /// trigger order), appending the monotonic ones to `tasks`.
    fn plan_insert_triggers(&self, tuple: &Tuple, tasks: &mut Vec<MonoTask>) -> Vec<TriggerOp> {
        let mut ops = Vec::new();
        if let Some(triggers) = self.program.triggers.get(&tuple.relation) {
            for &(rule_idx, atom_idx) in triggers {
                let rule = &self.program.rules[rule_idx];
                if rule.aggregate.is_some() {
                    ops.push(TriggerOp::Aggregate { rule_idx });
                } else if rule.has_negation() {
                    ops.push(TriggerOp::Reconcile { rule_idx });
                } else {
                    tasks.push(MonoTask {
                        rule_idx,
                        atom_idx,
                        tuple: tuple.clone(),
                    });
                    ops.push(TriggerOp::Mono);
                }
            }
        }
        if let Some(neg) = self.program.negation_triggers.get(&tuple.relation) {
            for &rule_idx in neg {
                ops.push(TriggerOp::Reconcile { rule_idx });
            }
        }
        ops
    }

    /// Commit one precomputed candidate firing: build its derivation record
    /// and route it through the normal emission path.
    fn commit_candidate(&mut self, candidate: Candidate, out: &mut StepOutput) {
        let rule_sym = self.program.rules[candidate.rule_idx].name_sym;
        let derivation = Derivation {
            rule: rule_sym,
            node: self.config.node,
            inputs: candidate.inputs.iter().map(Tuple::id).collect(),
        };
        self.emit_derivation(candidate.head, derivation, true, candidate.inputs, out);
    }

    // ----------------------------------------------------------------------
    // batched delta shipping
    // ----------------------------------------------------------------------

    /// Queue a delta for shipment to `dest`, coalescing against sends already
    /// pending this round: an insert followed by a delete of the same
    /// (tuple, derivation) — or vice versa — is a net no-op at the
    /// destination and both records are dropped; an identical re-emission is
    /// deduplicated. The outbox membership transitions guarantee polarities
    /// for one (tuple, derivation) strictly alternate, so "same pair, same
    /// polarity" only arises from redundant re-derivation paths.
    fn queue_send(&mut self, dest: Addr, delta: Delta, derivation: Derivation) {
        let sends = &mut self.pending_sends;
        let slots = self
            .pending_index
            .entry((dest, delta.tuple().id()))
            .or_default();
        // Almost every (dest, tuple) has one pending derivation, so a linear
        // scan of the slot list beats keying the map on the derivation (which
        // would clone its heap-allocated input list once per send).
        if let Some(pos) = slots.iter().position(|&s| {
            sends[s]
                .as_ref()
                .is_some_and(|p| p.derivation == derivation)
        }) {
            let slot = slots[pos];
            let prev = sends[slot].take().expect("indexed slot is live");
            if prev.delta.is_insert() == delta.is_insert() {
                // Duplicate emission of the same record: keep the first.
                sends[slot] = Some(prev);
            } else {
                // Opposite polarity: the pair cancels; ship neither.
                slots.swap_remove(pos);
            }
            return;
        }
        slots.push(sends.len());
        sends.push(Some(RemoteDelta {
            dest,
            delta,
            derivation,
        }));
    }

    /// Coalesce the surviving pending sends into one [`DeltaBatch`] per
    /// destination (record order = emission order) and account the priced
    /// payload. This is the single place `tuples_sent` / `bytes_sent` are
    /// bumped, so engine counters are the source of truth the platform's
    /// network charge must agree with.
    fn flush_sends(&mut self, out: &mut StepOutput) {
        self.pending_index.clear();
        if self.pending_sends.is_empty() {
            return;
        }
        let mut order: Vec<Addr> = Vec::new();
        let mut batches: HashMap<Addr, DeltaBatch> = HashMap::new();
        for slot in std::mem::take(&mut self.pending_sends) {
            let Some(send) = slot else { continue };
            let batch = batches.entry(send.dest).or_insert_with(|| {
                order.push(send.dest);
                DeltaBatch {
                    dest: send.dest,
                    dict: Vec::new(),
                    records: Vec::new(),
                }
            });
            let seen = self.dict_sent.entry(send.dest).or_default();
            collect_record_dict(send.delta.tuple(), &send.derivation, seen, &mut batch.dict);
            batch.records.push(DeltaRecord {
                delta: send.delta,
                derivation: send.derivation,
            });
        }
        for dest in order {
            let batch = batches.remove(&dest).expect("batch recorded");
            self.stats.tuples_sent += batch.records.len() as u64;
            self.stats.bytes_sent += batch.wire_size() as u64;
            self.stats.dict_bytes_sent += batch.header_bytes() as u64;
            out.sends.push(batch);
        }
    }

    /// Convenience: all tuples of a relation currently stored at this node.
    pub fn relation(&self, relation: &str) -> Vec<Tuple> {
        self.db.relation_tuples(relation)
    }

    // ----------------------------------------------------------------------
    // delta application
    // ----------------------------------------------------------------------

    fn ensure_table(&mut self, tuple: &Tuple) {
        if self.db.table_sym(tuple.relation).is_none() {
            // Relations unknown to the program (e.g. environment relations fed
            // for observation only) get a lenient schema: location column 0,
            // set semantics.
            self.db.register(crate::catalog::RelationSchema {
                name: tuple.relation.as_str().to_string(),
                arity: tuple.arity(),
                location_col: 0,
                key_cols: (0..tuple.arity()).collect(),
                is_base: true,
                lifetime: None,
            });
        }
    }

    /// `Value`'s total order equates `Int` and `Double` numerically, so two
    /// `Tuple`s can be equal while their content-addressed ids differ. Every
    /// id-keyed structure (dependency index, `by_id`, column indexes) must
    /// see one representation only: the one already stored. Canonicalize
    /// incoming deltas to it.
    fn canonical_tuple(&self, tuple: Tuple) -> Tuple {
        match self
            .db
            .table_sym(tuple.relation)
            .and_then(|table| table.get(&tuple))
        {
            Some(stored) if stored.id() != tuple.id() => stored.to_tuple(),
            _ => tuple,
        }
    }

    fn apply_add(&mut self, tuple: Tuple, derivation: Derivation, events: &mut Vec<GenEvent>) {
        self.ensure_table(&tuple);
        let tuple = self.canonical_tuple(tuple);
        let is_base = derivation.is_base();
        let inputs = derivation.inputs.clone();
        let membership = self
            .db
            .table_mut_sym(tuple.relation)
            .expect("table ensured")
            .add_derivation(&tuple, derivation);

        if matches!(
            membership,
            Membership::Appeared | Membership::AddedDerivation | Membership::Replaced(_)
        ) {
            for input in &inputs {
                self.db.index_dependency(*input, tuple.relation, tuple.id());
            }
            if is_base {
                // Report base tuples to the provenance layer.
                events.push(GenEvent::BaseFire {
                    tuple: tuple.clone(),
                    insert: true,
                });
            }
        }

        match membership {
            Membership::Unchanged | Membership::AddedDerivation | Membership::NotFound => {}
            Membership::Appeared => events.push(GenEvent::Appeared(tuple)),
            Membership::Replaced(old) => {
                // Update-in-place: the displaced tuple disappears first.
                events.push(GenEvent::Disappeared(old));
                events.push(GenEvent::Appeared(tuple));
            }
            Membership::Disappeared | Membership::RemovedDerivation => unreachable!(),
        }
    }

    fn apply_remove(&mut self, tuple: Tuple, derivation: Derivation, events: &mut Vec<GenEvent>) {
        let tuple = self.canonical_tuple(tuple);
        let Some(table) = self.db.table_mut_sym(tuple.relation) else {
            return;
        };
        let is_base = derivation.is_base();
        let membership = table.remove_derivation(&tuple, &derivation);
        if matches!(
            membership,
            Membership::Disappeared | Membership::RemovedDerivation
        ) && is_base
        {
            events.push(GenEvent::BaseFire {
                tuple: tuple.clone(),
                insert: false,
            });
        }
        if membership == Membership::Disappeared {
            events.push(GenEvent::Disappeared(tuple));
        }
    }

    /// A tuple lost its last derivation: cascade through the dependency index
    /// and re-trigger aggregate / negation rules. Runs at the event's merge
    /// position, so its queue pushes interleave with the generation's other
    /// emissions in sequence order.
    fn on_disappear(
        &mut self,
        tuple: &Tuple,
        reconciled: &mut HashSet<usize>,
        out: &mut StepOutput,
    ) {
        let id = tuple.id();
        let dependents = self.db.dependents_of(id);
        self.db.clear_dependency(id);
        for (relation, dep_tuple, derivations) in dependents {
            if let Some(outbox_rel) = relation.strip_prefix(OUTBOX_PREFIX) {
                // Derivations whose head lives on another node: retract the
                // outbox entry and notify the remote home.
                let home = self
                    .head_home(outbox_rel, &dep_tuple)
                    .unwrap_or(self.config.node);
                for derivation in derivations {
                    self.stats.retractions += 1;
                    out.firings.push(Firing {
                        rule: derivation.rule,
                        node: self.config.node,
                        head: dep_tuple.clone(),
                        head_home: home,
                        inputs: derivation.inputs.clone(),
                        input_tuples: Vec::new(),
                        insert: false,
                    });
                    self.retract_outbox(relation, &dep_tuple, derivation, home);
                }
            } else {
                for derivation in derivations {
                    self.stats.retractions += 1;
                    out.firings.push(Firing {
                        rule: derivation.rule,
                        node: self.config.node,
                        head: dep_tuple.clone(),
                        head_home: self.config.node,
                        inputs: derivation.inputs.clone(),
                        input_tuples: Vec::new(),
                        insert: false,
                    });
                    self.queue.push_back(WorkItem::Remove {
                        tuple: dep_tuple.clone(),
                        derivation,
                    });
                }
            }
        }
        // Aggregate and negation rules re-examine the affected groups.
        self.trigger_nonmonotonic(tuple, reconciled, out);
    }

    /// Aggregate-group recomputation and negation reconciliation triggered by
    /// a disappearance.
    fn trigger_nonmonotonic(
        &mut self,
        tuple: &Tuple,
        reconciled: &mut HashSet<usize>,
        out: &mut StepOutput,
    ) {
        let triggers = self
            .program
            .triggers
            .get(&tuple.relation)
            .cloned()
            .unwrap_or_default();
        for (rule_idx, _) in triggers {
            let rule = &self.program.rules[rule_idx];
            if rule.aggregate.is_some() {
                self.recompute_aggregate_for(rule_idx, tuple, out);
            } else if rule.has_negation() && reconciled.insert(rule_idx) {
                self.reconcile_rule(rule_idx, out);
            }
        }
        let neg = self
            .program
            .negation_triggers
            .get(&tuple.relation)
            .cloned()
            .unwrap_or_default();
        for rule_idx in neg {
            if reconciled.insert(rule_idx) {
                self.reconcile_rule(rule_idx, out);
            }
        }
    }

    /// Route a derivation of `head`: apply locally when the head lives here,
    /// otherwise record it in the outbox and produce a send.
    fn emit_derivation(
        &mut self,
        head: Tuple,
        derivation: Derivation,
        insert: bool,
        input_tuples: Vec<Tuple>,
        out: &mut StepOutput,
    ) {
        let home = self
            .head_home(&head.relation, &head)
            .unwrap_or(self.config.node);
        if insert {
            self.stats.rule_firings += 1;
        } else {
            self.stats.retractions += 1;
        }
        out.firings.push(Firing {
            rule: derivation.rule,
            node: self.config.node,
            head: head.clone(),
            head_home: home,
            inputs: derivation.inputs.clone(),
            input_tuples,
            insert,
        });
        if home == self.config.node {
            if insert {
                self.queue.push_back(WorkItem::Add {
                    tuple: head,
                    derivation,
                });
            } else {
                self.queue.push_back(WorkItem::Remove {
                    tuple: head,
                    derivation,
                });
            }
            return;
        }
        // Remote head: track in the outbox so that later input deletions can
        // retract the remote derivation, and ship the delta.
        let outbox_sym = self.outbox_sym(head.relation);
        if self.db.table_sym(outbox_sym).is_none() {
            let base = self
                .program
                .catalog
                .schema(&head.relation)
                .cloned()
                .unwrap_or(crate::catalog::RelationSchema {
                    name: head.relation.as_str().to_string(),
                    arity: head.arity(),
                    location_col: 0,
                    key_cols: (0..head.arity()).collect(),
                    is_base: false,
                    lifetime: None,
                });
            self.db.register(crate::catalog::RelationSchema {
                name: outbox_sym.as_str().to_string(),
                arity: base.arity,
                location_col: base.location_col,
                // Set semantics: the authoritative replacement decision is
                // made at the home node.
                key_cols: (0..base.arity).collect(),
                is_base: false,
                lifetime: None,
            });
        }
        if insert {
            let inputs = derivation.inputs.clone();
            let membership = self
                .db
                .table_mut_sym(outbox_sym)
                .expect("outbox registered")
                .add_derivation(&head, derivation.clone());
            if matches!(
                membership,
                Membership::Appeared | Membership::AddedDerivation | Membership::Replaced(_)
            ) {
                for input in inputs {
                    self.db.index_dependency(input, outbox_sym, head.id());
                }
                self.queue_send(home, Delta::Insert(head), derivation);
            }
        } else {
            self.retract_outbox(outbox_sym, &head, derivation, home);
        }
    }

    /// The single outbox-retraction path. Every caller — the input-cascade in
    /// [`Self::on_disappear`] and the aggregate/negation reconciliation in
    /// [`Self::emit_derivation`] — funnels through here, so a remote
    /// retraction performs exactly one membership transition and is queued
    /// for shipment at most once per round.
    fn retract_outbox(
        &mut self,
        outbox_sym: Sym,
        tuple: &Tuple,
        derivation: Derivation,
        home: Addr,
    ) {
        // Both callers hold the invariant that the outbox table exists (the
        // dependency index / reconciliation only yield registered outbox
        // relations); fail loudly rather than silently dropping a remote
        // retraction and leaving the destination with a stale tuple.
        let table = self
            .db
            .table_mut_sym(outbox_sym)
            .expect("outbox table exists for retraction");
        let membership = table.remove_derivation(tuple, &derivation);
        if matches!(
            membership,
            Membership::Disappeared | Membership::RemovedDerivation
        ) {
            self.queue_send(home, Delta::Delete(tuple.clone()), derivation);
        }
    }

    /// The interned `__out::<relation>` symbol, memoized per relation so the
    /// hot send path never formats a string.
    fn outbox_sym(&mut self, relation: Sym) -> Sym {
        *self
            .outbox_syms
            .entry(relation)
            .or_insert_with(|| Sym::new(&format!("{OUTBOX_PREFIX}{relation}")))
    }

    fn head_home(&self, relation: &str, tuple: &Tuple) -> Option<Addr> {
        let loc_col = self
            .program
            .catalog
            .schema(relation)
            .map(|s| s.location_col)
            .unwrap_or(0);
        tuple.values.get(loc_col).and_then(Value::as_node_id)
    }

    // ----------------------------------------------------------------------
    // aggregates
    // ----------------------------------------------------------------------

    /// Recompute the aggregate group(s) of `rule_idx` affected by a change to
    /// `changed`.
    fn recompute_aggregate_for(&mut self, rule_idx: usize, changed: &Tuple, out: &mut StepOutput) {
        let program = Arc::clone(&self.program);
        let rule = &program.rules[rule_idx];
        let atom = &rule.positive[0];
        let mut bindings = Bindings::new();
        if !match_atom(atom, changed, &mut bindings) {
            return;
        }
        let Some(group) = group_key(rule, &bindings) else {
            return;
        };
        self.recompute_group(rule_idx, rule, group, out);
    }

    fn recompute_group(
        &mut self,
        rule_idx: usize,
        rule: &CompiledRule,
        group: Vec<Value>,
        out: &mut StepOutput,
    ) {
        self.stats.agg_recomputes += 1;
        let spec = rule.aggregate.clone().expect("aggregate rule");
        let atom = &rule.positive[0];
        // Collect contributions to this group, probing by the group-key
        // columns so unrelated groups are never visited.
        let mut contributions: Vec<(Value, Tuple)> = Vec::new();
        let mut probes = 0u64;
        let bound = if self.config.use_join_indexes {
            let mut group_bindings = Bindings::new();
            let mut group_iter = group.iter();
            for (idx, term) in rule.rule.head.terms.iter().enumerate() {
                if idx == spec.agg_col {
                    continue;
                }
                let value = group_iter.next();
                if let (Term::Variable { name, .. }, Some(value)) = (term, value) {
                    group_bindings.insert(name.clone(), value.clone());
                }
            }
            morsel::resolve_bound_cols(&rule.aggregate_probe, &group_bindings)
        } else {
            Vec::new()
        };
        if let Some(table) = self.db.table(&atom.relation) {
            for cand in table.probe(&bound) {
                probes += 1;
                let mut b = Bindings::new();
                let mut added = Vec::new();
                if !morsel::match_candidate_undo(atom, &cand, &mut b, &mut added) {
                    continue;
                }
                let Some(b) = morsel::apply_steps(rule, b) else {
                    continue;
                };
                let Some(g) = group_key(rule, &b) else {
                    continue;
                };
                if g != group {
                    continue;
                }
                let value = if spec.var == "*" {
                    Value::Int(1)
                } else {
                    match b.get(&spec.var) {
                        Some(v) => v.clone(),
                        None => continue,
                    }
                };
                contributions.push((value, cand.to_tuple()));
            }
        }
        self.stats.join_probes += probes;

        let new_state: Option<(Tuple, Derivation, Vec<Tuple>)> = if contributions.is_empty() {
            None
        } else {
            let (agg_value, witnesses): (Value, Vec<Tuple>) = match spec.func {
                AggregateFunc::Min => {
                    let (v, t) = contributions
                        .iter()
                        .min_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.id().cmp(&b.1.id())))
                        .cloned()
                        .expect("non-empty");
                    (v, vec![t])
                }
                AggregateFunc::Max => {
                    let (v, t) = contributions
                        .iter()
                        .max_by(|a, b| a.0.cmp(&b.0).then_with(|| b.1.id().cmp(&a.1.id())))
                        .cloned()
                        .expect("non-empty");
                    (v, vec![t])
                }
                AggregateFunc::Count => (
                    Value::Int(contributions.len() as i64),
                    contributions.iter().map(|(_, t)| t.clone()).collect(),
                ),
                AggregateFunc::Sum => {
                    let mut acc = 0f64;
                    let mut all_int = true;
                    for (v, _) in &contributions {
                        match v {
                            Value::Int(i) => acc += *i as f64,
                            Value::Double(d) => {
                                all_int = false;
                                acc += *d;
                            }
                            _ => {}
                        }
                    }
                    let sum = if all_int {
                        Value::Int(acc as i64)
                    } else {
                        Value::Double(acc)
                    };
                    (sum, contributions.iter().map(|(_, t)| t.clone()).collect())
                }
            };
            // Rebuild head bindings from the group key + aggregate value.
            let head = build_agg_head(&rule.rule.head, &group, &agg_value, rule.head_loc_col);
            head.map(|head| {
                let derivation = Derivation {
                    rule: rule.name_sym,
                    node: self.config.node,
                    inputs: witnesses.iter().map(Tuple::id).collect(),
                };
                (head, derivation, witnesses)
            })
        };

        let key = (rule_idx, group);
        let old_state = self.agg_state.remove(&key);
        match (&old_state, &new_state) {
            (Some((old_head, old_deriv)), Some((new_head, new_deriv, _)))
                if old_head == new_head && old_deriv == new_deriv =>
            {
                // Nothing changed.
                self.agg_state
                    .insert(key, (old_head.clone(), old_deriv.clone()));
                return;
            }
            _ => {}
        }
        if let Some((old_head, old_deriv)) = old_state {
            self.emit_derivation(old_head, old_deriv, false, Vec::new(), out);
        }
        if let Some((new_head, new_deriv, witnesses)) = new_state {
            self.agg_state
                .insert(key, (new_head.clone(), new_deriv.clone()));
            self.emit_derivation(new_head, new_deriv, true, witnesses, out);
        }
    }

    // ----------------------------------------------------------------------
    // negation (reconciliation-based maintenance)
    // ----------------------------------------------------------------------

    /// Recompute all derivations of a rule containing negation and reconcile
    /// them with the currently recorded ones.
    fn reconcile_rule(&mut self, rule_idx: usize, out: &mut StepOutput) {
        let program = Arc::clone(&self.program);
        let rule = &program.rules[rule_idx];
        let mut new_derivations: Vec<(Tuple, Derivation, Vec<Tuple>)> = Vec::new();
        let mut probes = 0u64;
        {
            // Read phase: a scoped evaluation context computes the current
            // matches (full join along the precomputed plan); all mutation
            // happens after the scope ends.
            let ctx = EvalContext {
                db: &self.db,
                program: program.as_ref(),
                use_join_indexes: self.config.use_join_indexes,
            };
            let mut matched: Vec<Option<Tuple>> = vec![None; rule.positive.len()];
            let mut results = Vec::new();
            let mut bindings = Bindings::new();
            ctx.join_plan(
                rule,
                &rule.full_plan.steps,
                0,
                &mut bindings,
                &mut matched,
                &mut results,
                &mut probes,
            );
            for (bindings, inputs) in results {
                let Some(bindings) = morsel::apply_steps(rule, bindings) else {
                    continue;
                };
                let negated_hit =
                    rule.negated
                        .iter()
                        .zip(&rule.negated_probes)
                        .any(|(neg, probe_cols)| {
                            ctx.exists_match(neg, probe_cols, &bindings, &mut probes)
                        });
                if negated_hit {
                    continue;
                }
                let Some(head) = build_head(&rule.rule.head, &bindings, rule.head_loc_col, None)
                else {
                    continue;
                };
                let derivation = Derivation {
                    rule: rule.name_sym,
                    node: self.config.node,
                    inputs: inputs.iter().map(Tuple::id).collect(),
                };
                if !new_derivations
                    .iter()
                    .any(|(h, d, _)| *h == head && *d == derivation)
                {
                    new_derivations.push((head, derivation, inputs));
                }
            }
        }
        self.stats.join_probes += probes;

        // Currently recorded derivations of this rule at this node (local
        // tables and outbox tables).
        let mut old_derivations: Vec<(Sym, Tuple, Derivation)> = Vec::new();
        for (relation, table) in self.db.tables_with_syms() {
            for entry in table.iter() {
                let matching: Vec<Derivation> = entry
                    .derivations()
                    .iter()
                    .filter(|d| d.rule == rule.name_sym && d.node == self.config.node)
                    .cloned()
                    .collect();
                if matching.is_empty() {
                    continue;
                }
                let tuple = entry.to_tuple();
                for d in matching {
                    old_derivations.push((relation, tuple.clone(), d));
                }
            }
        }

        // Retract derivations that no longer hold.
        for (relation, tuple, derivation) in &old_derivations {
            let still_valid = new_derivations
                .iter()
                .any(|(h, d, _)| h == tuple && d == derivation);
            if !still_valid {
                if relation.starts_with(OUTBOX_PREFIX) {
                    self.emit_derivation(tuple.clone(), derivation.clone(), false, Vec::new(), out);
                } else {
                    out.firings.push(Firing {
                        rule: derivation.rule,
                        node: self.config.node,
                        head: tuple.clone(),
                        head_home: self.config.node,
                        inputs: derivation.inputs.clone(),
                        input_tuples: Vec::new(),
                        insert: false,
                    });
                    self.stats.retractions += 1;
                    self.queue.push_back(WorkItem::Remove {
                        tuple: tuple.clone(),
                        derivation: derivation.clone(),
                    });
                }
            }
        }
        // Add derivations that are new.
        for (head, derivation, inputs) in new_derivations {
            let already = old_derivations
                .iter()
                .any(|(_, t, d)| *t == head && *d == derivation);
            if !already {
                self.emit_derivation(head, derivation, true, inputs, out);
            }
        }
    }
}

// --------------------------------------------------------------------------
// matching helpers
// --------------------------------------------------------------------------

/// Match a tuple against a body atom pattern, extending `bindings`.
pub fn match_atom(atom: &Predicate, tuple: &Tuple, bindings: &mut Bindings) -> bool {
    if atom.relation != tuple.relation || atom.terms.len() != tuple.values.len() {
        return false;
    }
    for (term, value) in atom.terms.iter().zip(&tuple.values) {
        match term {
            Term::Wildcard => {}
            Term::Variable { name, .. } => match bindings.get(name) {
                Some(bound) => {
                    if !values_match(bound, value) {
                        return false;
                    }
                }
                None => {
                    bindings.insert(name.clone(), value.clone());
                }
            },
            Term::Constant { value: lit, .. } => {
                if !literal_matches(lit, value) {
                    return false;
                }
            }
            Term::Aggregate(_) => return false,
        }
    }
    true
}

/// Collect the interned strings referenced by a shipped record that the
/// destination has not been sent before, in first-use order: the relation
/// name, every address value (recursively through lists) and the
/// derivation's rule and node. `seen` tracks raw pool ids already shipped to
/// the destination ([`Sym`] and [`crate::value::NodeId`] share one pool, so
/// one id space covers both).
fn collect_record_dict(
    tuple: &Tuple,
    derivation: &Derivation,
    seen: &mut HashSet<u32>,
    dict: &mut Vec<String>,
) {
    fn push_entry(id: u32, s: &str, seen: &mut HashSet<u32>, dict: &mut Vec<String>) {
        if seen.insert(id) {
            dict.push(s.to_string());
        }
    }
    fn walk_value(v: &Value, seen: &mut HashSet<u32>, dict: &mut Vec<String>) {
        match v {
            Value::Addr(a) => push_entry(a.index(), a.as_str(), seen, dict),
            Value::List(l) => {
                for v in l {
                    walk_value(v, seen, dict);
                }
            }
            _ => {}
        }
    }
    push_entry(tuple.relation.index(), tuple.relation.as_str(), seen, dict);
    for v in &tuple.values {
        walk_value(v, seen, dict);
    }
    push_entry(
        derivation.rule.index(),
        derivation.rule.as_str(),
        seen,
        dict,
    );
    push_entry(
        derivation.node.index(),
        derivation.node.as_str(),
        seen,
        dict,
    );
}

/// Value equality that treats `Addr` and `Str` with the same text as equal —
/// now defined next to `Value` itself (the storage layer's column matchers
/// share it); re-exported here for the evaluation-layer callers.
pub use crate::value::values_match;

fn literal_matches(lit: &Literal, value: &Value) -> bool {
    values_match(&literal_value(lit), value)
}

/// Construct a head tuple from bindings. `agg` supplies the aggregate value
/// when the head contains an aggregate term.
pub fn build_head(
    head: &Predicate,
    bindings: &Bindings,
    head_loc_col: usize,
    agg: Option<&Value>,
) -> Option<Tuple> {
    let mut values = Vec::with_capacity(head.terms.len());
    for (idx, term) in head.terms.iter().enumerate() {
        let mut value = match term {
            Term::Variable { name, .. } => bindings.get(name)?.clone(),
            Term::Constant { value, .. } => literal_value(value),
            Term::Aggregate(_) => agg?.clone(),
            Term::Wildcard => return None,
        };
        if idx == head_loc_col {
            if let Value::Str(s) = value {
                value = Value::Addr(s.into());
            }
        }
        values.push(value);
    }
    Some(Tuple::new(head.relation.clone(), values))
}

/// The group key of an aggregate head under `bindings`: every head term except
/// the aggregate column.
fn group_key(rule: &CompiledRule, bindings: &Bindings) -> Option<Vec<Value>> {
    let spec = rule.aggregate.as_ref()?;
    let mut key = Vec::new();
    for (idx, term) in rule.rule.head.terms.iter().enumerate() {
        if idx == spec.agg_col {
            continue;
        }
        match term {
            Term::Variable { name, .. } => key.push(bindings.get(name)?.clone()),
            Term::Constant { value, .. } => key.push(literal_value(value)),
            _ => return None,
        }
    }
    Some(key)
}

/// Build an aggregate head tuple from a group key and the aggregate value.
fn build_agg_head(
    head: &Predicate,
    group: &[Value],
    agg_value: &Value,
    head_loc_col: usize,
) -> Option<Tuple> {
    let mut values = Vec::with_capacity(head.terms.len());
    let mut group_iter = group.iter();
    for (idx, term) in head.terms.iter().enumerate() {
        let mut value = match term {
            Term::Aggregate(_) => agg_value.clone(),
            _ => group_iter.next()?.clone(),
        };
        if idx == head_loc_col {
            if let Value::Str(s) = value {
                value = Value::Addr(s.into());
            }
        }
        values.push(value);
    }
    Some(Tuple::new(head.relation.clone(), values))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINCOST: &str = "materialize(link, infinity, infinity, keys(1,2,3)).\n\
         materialize(cost, infinity, infinity, keys(1,2,3)).\n\
         materialize(minCost, infinity, infinity, keys(1,2)).\n\
         r1 cost(@S,D,C) :- link(@S,D,C).\n\
         r2 cost(@S,D,C) :- link(@S,Z,C1), minCost(@Z,D,C2), C := C1 + C2.\n\
         r3 minCost(@S,D,min<C>) :- cost(@S,D,C).";

    fn link(s: &str, d: &str, c: i64) -> Tuple {
        Tuple::new("link", vec![Value::addr(s), Value::addr(d), Value::Int(c)])
    }

    fn engine(node: &str, src: &str) -> NodeEngine {
        let program = Arc::new(CompiledProgram::from_source(src).unwrap());
        NodeEngine::new(program, EngineConfig::new(node))
    }

    /// Single-node MINCOST: n1 has links to itself conceptually; here we just
    /// exercise the local pipeline on one node by keeping all tuples at n1.
    #[test]
    fn local_rule_derives_cost_and_min_cost() {
        let mut e = engine("n1", MINCOST);
        e.insert_base(link("n1", "n2", 5));
        let out = e.run();
        assert!(!out.truncated);
        let cost = e.relation("cost");
        assert_eq!(cost.len(), 1);
        assert_eq!(cost[0].values[2], Value::Int(5));
        let min_cost = e.relation("minCost");
        assert_eq!(min_cost.len(), 1);
        assert_eq!(min_cost[0].values[2], Value::Int(5));
        // Base firing + r1 firing + r3 firing at least.
        assert!(out.firings.iter().any(|f| f.rule == BASE_RULE));
        assert!(out.firings.iter().any(|f| f.rule == "r1"));
        assert!(out.firings.iter().any(|f| f.rule == "r3"));
    }

    #[test]
    fn remote_heads_go_to_the_outbox_and_are_sent() {
        // reach is derived at S but lives at D -> must be shipped.
        let mut e = engine("n1", "r1 reach(@D,S) :- link(@S,D,C).");
        e.insert_base(link("n1", "n2", 1));
        let out = e.run();
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].dest, "n2");
        assert_eq!(out.sends[0].records.len(), 1);
        assert!(matches!(out.sends[0].records[0].delta, Delta::Insert(_)));
        // The first batch to n2 carries the dictionary entries its records
        // reference (relation, addresses, rule, node).
        assert!(out.sends[0].dict.iter().any(|s| s == "reach"));
        assert!(out.sends[0].dict.iter().any(|s| s == "r1"));
        // Not stored locally.
        assert!(e.relation("reach").is_empty());
        // Deleting the link retracts the remote derivation; the dictionary
        // was already shipped, so the retraction batch carries none of the
        // already-sent strings again.
        e.delete_base(link("n1", "n2", 1));
        let out = e.run();
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].records.len(), 1);
        assert!(matches!(out.sends[0].records[0].delta, Delta::Delete(_)));
        assert!(out.sends[0].dict.is_empty());
    }

    #[test]
    fn receiving_engine_applies_remote_deltas() {
        let program =
            Arc::new(CompiledProgram::from_source("r1 reach(@D,S) :- link(@S,D,C).").unwrap());
        let mut sender = NodeEngine::new(program.clone(), EngineConfig::new("n1"));
        let mut receiver = NodeEngine::new(program, EngineConfig::new("n2"));
        sender.insert_base(link("n1", "n2", 1));
        let out = sender.run();
        for batch in out.sends {
            assert_eq!(batch.dest, "n2");
            for record in batch.records {
                receiver.apply_remote(record.delta, record.derivation);
            }
        }
        receiver.run();
        assert_eq!(receiver.relation("reach").len(), 1);
    }

    #[test]
    fn min_aggregate_tracks_the_minimum_incrementally() {
        let mut e = engine("n1", MINCOST);
        e.insert_base(link("n1", "n2", 5));
        e.insert_base(link("n1", "n2", 3));
        e.run();
        let min_cost = e.relation("minCost");
        assert_eq!(min_cost.len(), 1);
        assert_eq!(min_cost[0].values[2], Value::Int(3));
        // Deleting the cheaper link falls back to the more expensive one.
        e.delete_base(link("n1", "n2", 3));
        e.run();
        let min_cost = e.relation("minCost");
        assert_eq!(min_cost.len(), 1);
        assert_eq!(min_cost[0].values[2], Value::Int(5));
        // Deleting the last link removes the aggregate entirely.
        e.delete_base(link("n1", "n2", 5));
        e.run();
        assert!(e.relation("minCost").is_empty());
        assert!(e.relation("cost").is_empty());
    }

    #[test]
    fn deleting_base_tuples_cascades_through_derived_relations() {
        let mut e = engine("n1", "r1 cost(@S,D,C) :- link(@S,D,C).");
        e.insert_base(link("n1", "n2", 5));
        e.run();
        assert_eq!(e.relation("cost").len(), 1);
        e.delete_base(link("n1", "n2", 5));
        let out = e.run();
        assert!(e.relation("cost").is_empty());
        assert!(out
            .local_changes
            .iter()
            .any(|d| matches!(d, Delta::Delete(t) if t.relation == "cost")));
    }

    #[test]
    fn alternative_derivations_keep_tuples_alive() {
        // Two links derive the same `reachable` tuple; deleting one keeps it.
        let mut e = engine("n1", "r1 reachable(@S,D) :- link(@S,D,C).");
        e.insert_base(link("n1", "n2", 1));
        e.insert_base(link("n1", "n2", 7));
        e.run();
        assert_eq!(e.relation("reachable").len(), 1);
        e.delete_base(link("n1", "n2", 1));
        e.run();
        assert_eq!(
            e.relation("reachable").len(),
            1,
            "still one derivation left"
        );
        e.delete_base(link("n1", "n2", 7));
        e.run();
        assert!(e.relation("reachable").is_empty());
    }

    #[test]
    fn update_in_place_replaces_keyed_tuples() {
        // link keyed on (src, dst): inserting a new cost replaces the old one.
        let mut e = engine(
            "n1",
            "materialize(link, infinity, infinity, keys(1,2)).\n\
             r1 cost(@S,D,C) :- link(@S,D,C).",
        );
        e.insert_base(link("n1", "n2", 5));
        e.run();
        e.insert_base(link("n1", "n2", 2));
        e.run();
        let cost = e.relation("cost");
        assert_eq!(cost.len(), 1);
        assert_eq!(cost[0].values[2], Value::Int(2));
    }

    #[test]
    fn negation_rules_are_reconciled() {
        let src = "materialize(node, infinity, infinity, keys(1,2)).\n\
                   materialize(link, infinity, infinity, keys(1,2)).\n\
                   r1 missing(@N,M) :- node(@N,M), !link(@N,M).";
        let mut e = engine("n1", src);
        let node = Tuple::new("node", vec![Value::addr("n1"), Value::addr("n2")]);
        let l = Tuple::new("link", vec![Value::addr("n1"), Value::addr("n2")]);
        e.insert_base(node.clone());
        e.run();
        assert_eq!(e.relation("missing").len(), 1);
        // Adding the link removes the `missing` tuple...
        e.insert_base(l.clone());
        e.run();
        assert!(e.relation("missing").is_empty());
        // ... and deleting it brings the tuple back.
        e.delete_base(l);
        e.run();
        assert_eq!(e.relation("missing").len(), 1);
    }

    #[test]
    fn filters_and_assignments_restrict_derivations() {
        let src = "r1 close(@S,D,C) :- link(@S,D,C), C < 5.\n\
                   r2 double(@S,D,C2) :- link(@S,D,C), C2 := C * 2.";
        let mut e = engine("n1", src);
        e.insert_base(link("n1", "n2", 3));
        e.insert_base(link("n1", "n3", 9));
        e.run();
        assert_eq!(e.relation("close").len(), 1);
        let doubles: Vec<i64> = e
            .relation("double")
            .iter()
            .map(|t| t.values[2].as_int().unwrap())
            .collect();
        assert_eq!(doubles.len(), 2);
        assert!(doubles.contains(&6) && doubles.contains(&18));
    }

    #[test]
    fn stats_count_work() {
        let mut e = engine("n1", MINCOST);
        e.insert_base(link("n1", "n2", 5));
        e.run();
        let stats = e.stats();
        assert!(stats.deltas_processed > 0);
        assert!(stats.rule_firings > 0);
        assert!(stats.agg_recomputes > 0);
    }

    #[test]
    fn run_cap_reports_truncation() {
        let mut e = NodeEngine::new(
            Arc::new(CompiledProgram::from_source(MINCOST).unwrap()),
            EngineConfig {
                max_deltas_per_run: 1,
                ..EngineConfig::new("n1")
            },
        );
        e.insert_base(link("n1", "n2", 5));
        e.insert_base(link("n1", "n3", 5));
        let out = e.run();
        assert!(out.truncated);
    }

    /// Regression: re-deriving a head already present in the outbox must not
    /// ship the identical (tuple, derivation) record twice in one round —
    /// both historical insert paths now funnel through `queue_send`, whose
    /// pending index keeps at most one live record per (dest, tuple,
    /// derivation).
    #[test]
    fn rederivation_ships_an_outbox_tuple_at_most_once_per_round() {
        // The same delta matches both body-atom positions, so the rule fires
        // twice with an identical head and derivation.
        let mut e = engine("n1", "r1 reach(@D,S) :- link(@S,D,C), link(@S,D,C).");
        e.insert_base(link("n1", "n2", 1));
        let out = e.run();
        let records: usize = out.sends.iter().map(|b| b.records.len()).sum();
        assert_eq!(records, 1, "identical re-derivation must ship once");
        // A genuinely different derivation of the same head still ships: the
        // destination counts derivations for retraction correctness.
        let mut e = engine(
            "n1",
            "r1 reach(@D,S) :- link(@S,D,C).\nr2 reach(@D,S) :- back(@S,D,C).",
        );
        e.insert_base(link("n1", "n2", 1));
        e.insert_base(Tuple::new(
            "back",
            vec![Value::addr("n1"), Value::addr("n2"), Value::Int(9)],
        ));
        let out = e.run();
        let records: usize = out.sends.iter().map(|b| b.records.len()).sum();
        assert_eq!(records, 2, "distinct derivations both ship");
    }

    /// An insert and a delete of the same (tuple, derivation) within one
    /// round are a net no-op at the destination: the pair cancels and
    /// nothing is shipped.
    #[test]
    fn same_round_insert_delete_pairs_cancel() {
        let mut e = engine("n1", "r1 reach(@D,S) :- link(@S,D,C).");
        e.insert_base(link("n1", "n2", 1));
        e.delete_base(link("n1", "n2", 1));
        let out = e.run();
        assert!(
            out.sends.iter().all(|b| b.records.is_empty()),
            "cancelled churn must not reach the wire: {:?}",
            out.sends
        );
        assert_eq!(e.stats().tuples_sent, 0);
        assert_eq!(e.stats().bytes_sent, 0);
    }

    /// Sends to several destinations coalesce into one batch per
    /// destination per round, and engine byte counters equal the priced
    /// batch sizes exactly.
    #[test]
    fn sends_coalesce_into_one_batch_per_destination() {
        let mut e = engine("n1", "r1 reach(@D,S) :- link(@S,D,C).");
        e.insert_base(link("n1", "n2", 1));
        e.insert_base(link("n1", "n2", 2));
        e.insert_base(link("n1", "n3", 1));
        let out = e.run();
        assert_eq!(out.sends.len(), 2, "one batch per destination");
        let to_n2 = out.sends.iter().find(|b| b.dest == "n2").unwrap();
        assert_eq!(to_n2.records.len(), 2, "records to n2 share one batch");
        let total: u64 = out.sends.iter().map(|b| b.wire_size() as u64).sum();
        assert_eq!(e.stats().tuples_sent, 3);
        assert_eq!(e.stats().bytes_sent, total);
        let dict: u64 = out.sends.iter().map(|b| b.header_bytes() as u64).sum();
        assert_eq!(e.stats().dict_bytes_sent, dict);
        assert!(dict > 0, "first contact ships dictionary entries");
    }

    /// Dictionary entries are charged once per (destination, first use):
    /// a second round to the same destination only ships strings it has
    /// never sent there.
    #[test]
    fn dictionary_is_shipped_once_per_destination() {
        let mut e = engine("n1", "r1 reach(@D,S) :- link(@S,D,C).");
        e.insert_base(link("n1", "n2", 1));
        let first = e.run();
        assert!(!first.sends[0].dict.is_empty());
        // Another tuple to the same destination: all identifiers already
        // shipped, so the new batch's header is empty.
        e.insert_base(link("n1", "n2", 7));
        let second = e.run();
        assert_eq!(second.sends.len(), 1);
        assert!(second.sends[0].dict.is_empty());
        // A new destination starts its own dictionary from scratch.
        e.insert_base(link("n1", "n3", 1));
        let third = e.run();
        assert!(third.sends[0].dict.iter().any(|s| s == "reach"));
    }

    #[test]
    fn match_atom_binds_and_checks_constants() {
        use ndlog::parse_rule;
        let rule = parse_rule("r1 out(@S) :- link(@S,D,3).").unwrap();
        let atom = rule.body_atoms().next().unwrap();
        let mut b = Bindings::new();
        assert!(match_atom(atom, &link("n1", "n2", 3), &mut b));
        assert_eq!(b["S"], Value::addr("n1"));
        let mut b = Bindings::new();
        assert!(!match_atom(atom, &link("n1", "n2", 4), &mut b));
    }
}
