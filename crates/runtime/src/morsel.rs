//! Morsel-driven parallel rule evaluation for the generation-based
//! semi-naive fixpoint.
//!
//! A [`crate::NodeEngine`] processes its delta queue in *generations*: all
//! currently queued deltas are applied to the tables first (sequential, in
//! stream order), and only then are the surviving insertions expanded into
//! rule-evaluation trigger tasks. Because the tables do not change again
//! until the next generation, every monotonic (non-aggregate, negation-free)
//! trigger task is a pure read over the database — the join plan, the
//! assignment/filter steps and the head construction touch nothing mutable.
//! That is what makes them safe to farm out.
//!
//! [`evaluate_tasks`] partitions the generation's task list into fixed-size
//! *morsels* and dispatches them to the process-wide [`nt_pool`] workers,
//! keeping at most `workers` morsels in flight. Workers pull morsels off the
//! shared queue as they free up (the morsel-driven scheduling discipline), so
//! a skewed task — one delta joining against a huge posting list — does not
//! stall the rest of the generation behind it.
//!
//! ## Determinism discipline
//!
//! Parallelism must never show through in the output. Three properties make
//! every worker count — including the inline sequential path — bit-identical:
//!
//! 1. each task's candidate list depends only on the (frozen) database, so a
//!    task computes the same candidates on any thread;
//! 2. morsel results come back in task order ([`nt_pool::run_borrowed_limited`]
//!    indexes acknowledgements), so the flattened candidate stream equals the
//!    sequential one;
//! 3. all mutation — derivation emission, outbox sends, aggregate and
//!    negation reconciliation, cascade deletion — happens in the engine's
//!    sequence-ordered merge phase, which consumes the candidate stream in
//!    task order on one thread.
//!
//! Probe counters are summed per task and folded in task order, so
//! `EngineStats` is identical too.

use crate::compile::{BoundTerm, CompiledProgram, CompiledRule, ProbeStrategy};
use crate::engine::{build_head, match_atom};
use crate::eval::{eval_expr, eval_filter, literal_value, Bindings};
use crate::store::{Database, TupleRef};
use crate::tuple::Tuple;
use crate::value::Value;
use ndlog::{BodyElem, Literal, Predicate, Term};

/// Tasks per morsel. Small enough that a generation of a few hundred tasks
/// still load-balances across workers, large enough that the per-dispatch
/// overhead (one boxed closure + one acknowledgement) is amortized. Morsel
/// boundaries never affect output — results are flattened in task order.
pub(crate) const MORSEL_TASKS: usize = 32;

/// One parallelizable trigger: evaluate rule `rule_idx` with the delta tuple
/// bound to body atom `atom_idx`, following the precomputed join plan for
/// that trigger position. Only monotonic rules (no aggregate, no negation)
/// become `MonoTask`s; everything else stays on the sequential merge path.
#[derive(Debug, Clone)]
pub(crate) struct MonoTask {
    pub rule_idx: usize,
    pub atom_idx: usize,
    pub tuple: Tuple,
}

/// A candidate firing produced by a trigger task: the constructed head and
/// the body tuples that matched, in body order. The derivation record is
/// built at commit time by the merge phase (it only needs the rule symbol,
/// the engine's node and the input ids).
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub rule_idx: usize,
    pub head: Tuple,
    pub inputs: Vec<Tuple>,
}

/// A read-only view of everything rule evaluation needs: the frozen tables,
/// the compiled program and the probe configuration. `Copy` so closures can
/// capture it by value; all referents are shared borrows, which is exactly
/// why a task can run on any pool thread.
#[derive(Clone, Copy)]
pub(crate) struct EvalContext<'a> {
    pub db: &'a Database,
    pub program: &'a CompiledProgram,
    pub use_join_indexes: bool,
}

impl<'a> EvalContext<'a> {
    /// Evaluate one monotonic trigger task: match the delta against its
    /// trigger atom, join the remaining atoms along the precomputed plan,
    /// apply assignments/filters and construct heads. Returns the candidates
    /// in discovery order plus the number of join candidates examined.
    pub fn eval_candidates(&self, task: &MonoTask) -> (Vec<Candidate>, u64) {
        let rule = &self.program.rules[task.rule_idx];
        let mut bindings = Bindings::new();
        if !match_atom(&rule.positive[task.atom_idx], &task.tuple, &mut bindings) {
            return (Vec::new(), 0);
        }
        let mut matched: Vec<Option<Tuple>> = vec![None; rule.positive.len()];
        matched[task.atom_idx] = Some(task.tuple.clone());
        let mut results = Vec::new();
        let mut probes = 0u64;
        self.join_plan(
            rule,
            &rule.plans[task.atom_idx].steps,
            0,
            &mut bindings,
            &mut matched,
            &mut results,
            &mut probes,
        );
        let mut candidates = Vec::new();
        for (bindings, inputs) in results {
            let Some(bindings) = apply_steps(rule, bindings) else {
                continue;
            };
            // Monotonic rules carry no negated atoms; the loop is kept so
            // the candidate pipeline stays a faithful port of `fire_rule`.
            let mut negated_hit = false;
            for (neg, probe_cols) in rule.negated.iter().zip(&rule.negated_probes) {
                if self.exists_match(neg, probe_cols, &bindings, &mut probes) {
                    negated_hit = true;
                    break;
                }
            }
            if negated_hit {
                continue;
            }
            let Some(head) = build_head(&rule.rule.head, &bindings, rule.head_loc_col, None) else {
                continue;
            };
            candidates.push(Candidate {
                rule_idx: task.rule_idx,
                head,
                inputs,
            });
        }
        (candidates, probes)
    }

    /// Recursively join the atoms of a plan. Each step probes its table
    /// through the bound columns the plan computed at compile time, so the
    /// candidate set is an index posting list rather than the whole table;
    /// bindings are extended in place (with undo) instead of cloned per
    /// candidate. `probes` counts the candidates actually examined.
    #[allow(clippy::too_many_arguments)]
    pub fn join_plan(
        &self,
        rule: &CompiledRule,
        steps: &[crate::compile::PlanStep],
        pos: usize,
        bindings: &mut Bindings,
        matched: &mut Vec<Option<Tuple>>,
        results: &mut Vec<(Bindings, Vec<Tuple>)>,
        probes: &mut u64,
    ) {
        if pos == steps.len() {
            let inputs: Vec<Tuple> = matched
                .iter()
                .map(|t| t.clone().expect("all atoms matched"))
                .collect();
            results.push((bindings.clone(), inputs));
            return;
        }
        let step = &steps[pos];
        let atom = &rule.positive[step.atom];
        let Some(table) = self.db.table_sym(rule.positive_syms[step.atom]) else {
            return;
        };
        let bound = if self.use_join_indexes && step.strategy == ProbeStrategy::PostingList {
            resolve_bound_cols(&step.bound_cols, bindings)
        } else {
            Vec::new()
        };
        for cand in table.probe(&bound) {
            *probes += 1;
            let mut added = Vec::new();
            if match_candidate_undo(atom, &cand, bindings, &mut added) {
                // Only a surviving candidate is materialized out of its
                // columnar slot; the matching above reads the columns in
                // place.
                matched[step.atom] = Some(cand.to_tuple());
                self.join_plan(rule, steps, pos + 1, bindings, matched, results, probes);
                matched[step.atom] = None;
                for name in added {
                    bindings.remove(&name);
                }
            }
        }
    }

    /// Does any stored tuple match `atom` under `bindings`? Probes the
    /// relation's indexes through the compile-time bound columns instead of
    /// scanning; `probes` counts the candidates examined.
    pub fn exists_match(
        &self,
        atom: &Predicate,
        probe_cols: &[(usize, BoundTerm)],
        bindings: &Bindings,
        probes: &mut u64,
    ) -> bool {
        let Some(table) = self.db.table(&atom.relation) else {
            return false;
        };
        let bound = if self.use_join_indexes {
            resolve_bound_cols(probe_cols, bindings)
        } else {
            Vec::new()
        };
        // One scratch clone for the whole check instead of one per candidate.
        let mut scratch = bindings.clone();
        for cand in table.probe(&bound) {
            *probes += 1;
            let mut added = Vec::new();
            if match_candidate_undo(atom, &cand, &mut scratch, &mut added) {
                return true;
            }
        }
        false
    }
}

/// Evaluate every task, returning `(candidates, probes)` per task in task
/// order. Dispatches morsels to the shared worker pool only when the engine
/// is configured for parallelism *and* the generation is large enough to
/// amortize dispatch — small generations run inline with zero pool traffic.
/// Both paths produce identical output (see the module documentation).
pub(crate) fn evaluate_tasks(
    ctx: &EvalContext<'_>,
    tasks: &[MonoTask],
    workers: usize,
    dispatch_threshold: usize,
) -> Vec<(Vec<Candidate>, u64)> {
    type MorselJob<'env> = Box<dyn FnOnce() -> Vec<(Vec<Candidate>, u64)> + Send + 'env>;
    if workers <= 1 || tasks.is_empty() || tasks.len() < dispatch_threshold {
        return tasks.iter().map(|t| ctx.eval_candidates(t)).collect();
    }
    let jobs: Vec<MorselJob<'_>> = tasks
        .chunks(MORSEL_TASKS)
        .map(|morsel| {
            let ctx = *ctx;
            Box::new(move || morsel.iter().map(|t| ctx.eval_candidates(t)).collect())
                as MorselJob<'_>
        })
        .collect();
    nt_pool::run_borrowed_limited(jobs, workers)
        .into_iter()
        .flatten()
        .collect()
}

/// Evaluate assignments and filters; `None` when a filter rejects the
/// bindings or an expression fails to evaluate.
pub(crate) fn apply_steps(rule: &CompiledRule, mut bindings: Bindings) -> Option<Bindings> {
    for step in &rule.steps {
        match step {
            BodyElem::Assign { var, expr } => match eval_expr(expr, &bindings) {
                Ok(value) => match bindings.get(var) {
                    Some(existing) if *existing != value => return None,
                    _ => {
                        bindings.insert(var.clone(), value);
                    }
                },
                Err(_) => return None,
            },
            BodyElem::Filter(expr) => match eval_filter(expr, &bindings) {
                Ok(true) => {}
                _ => return None,
            },
            BodyElem::Atom(_) => {}
        }
    }
    Some(bindings)
}

/// Resolve a plan's bound columns against the current bindings into concrete
/// probe values.
pub(crate) fn resolve_bound_cols(
    bound_cols: &[(usize, BoundTerm)],
    bindings: &Bindings,
) -> Vec<(usize, crate::value::Value)> {
    bound_cols
        .iter()
        .filter_map(|(col, bt)| match bt {
            BoundTerm::Const(lit) => Some((*col, literal_value(lit))),
            BoundTerm::Var(name) => bindings.get(name).map(|v| (*col, v.clone())),
        })
        .collect()
}

/// Like [`match_atom`], but works on a borrowed probe candidate (matching
/// column by column against the storage without materializing a `Tuple`) and
/// extends `bindings` in place instead of requiring the caller to clone them
/// per candidate: variables newly bound are recorded in `added`, and on a
/// failed match they are removed again before returning. On success the
/// caller owns the cleanup (after recursing).
pub(crate) fn match_candidate_undo(
    atom: &Predicate,
    cand: &TupleRef<'_>,
    bindings: &mut Bindings,
    added: &mut Vec<String>,
) -> bool {
    if cand.relation().as_str() != atom.relation || atom.terms.len() != cand.arity() {
        return false;
    }
    let mut ok = true;
    for (col, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Wildcard => {}
            Term::Variable { name, .. } => match bindings.get(name) {
                Some(bound) => {
                    if !cand.matches(col, bound) {
                        ok = false;
                        break;
                    }
                }
                None => {
                    bindings.insert(name.clone(), cand.value(col));
                    added.push(name.clone());
                }
            },
            Term::Constant { value: lit, .. } => {
                if !literal_matches_ref(lit, cand, col) {
                    ok = false;
                    break;
                }
            }
            Term::Aggregate(_) => {
                ok = false;
                break;
            }
        }
    }
    if !ok {
        for name in added.drain(..) {
            bindings.remove(&name);
        }
    }
    ok
}

/// Does the candidate's column `col` match a program literal? String
/// literals compare as text (matching `Addr` too) without allocating the
/// `Value::Str` that [`literal_value`] would build per candidate.
fn literal_matches_ref(lit: &Literal, cand: &TupleRef<'_>, col: usize) -> bool {
    match lit {
        Literal::Str(s) => cand.matches_text(col, s),
        Literal::Int(v) => cand.matches(col, &Value::Int(*v)),
        Literal::Double(v) => cand.matches(col, &Value::Double(*v)),
        Literal::Bool(b) => cand.matches(col, &Value::Bool(*b)),
        Literal::Infinity => cand.matches(col, &Value::Infinity),
    }
}
