//! Expression evaluation and builtin function implementations.
//!
//! Expressions appear in assignments (`C := C1 + C2`), selection predicates
//! (`f_member(P, S) == 0`) and in the arguments of `maybe` rules evaluated by
//! the legacy-application proxy. Evaluation happens against a set of
//! *bindings* produced by matching body atoms against stored tuples.

use crate::error::{Result, RuntimeError};
use crate::value::{StableHasher, Value};
use ndlog::{BinOp, Expr, Literal, UnOp};
use std::collections::BTreeMap;

/// Variable bindings accumulated while evaluating a rule body.
///
/// A `BTreeMap` keeps iteration deterministic, which matters for reproducible
/// provenance identifiers and simulator runs.
pub type Bindings = BTreeMap<String, Value>;

/// Convert an AST literal to a runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::Int(*v),
        Literal::Double(v) => Value::Double(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Infinity => Value::Infinity,
    }
}

/// Evaluate an expression under the given bindings.
pub fn eval_expr(expr: &Expr, bindings: &Bindings) -> Result<Value> {
    match expr {
        Expr::Var(name) => bindings
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::eval(format!("unbound variable `{name}`"))),
        Expr::Const(lit) => Ok(literal_value(lit)),
        Expr::Unary { op, expr } => {
            let v = eval_expr(expr, bindings)?;
            match op {
                UnOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Double(d) => Ok(Value::Double(-d)),
                    other => Err(RuntimeError::eval(format!("cannot negate {other}"))),
                },
                UnOp::Not => Ok(Value::Bool(!v.truthy())),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_expr(lhs, bindings)?;
            let r = eval_expr(rhs, bindings)?;
            eval_binop(*op, &l, &r)
        }
        Expr::Call { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, bindings)?);
            }
            call_builtin(func, &vals)
        }
    }
}

/// Evaluate an expression and coerce the result to a boolean (for filters).
pub fn eval_filter(expr: &Expr, bindings: &Bindings) -> Result<bool> {
    Ok(eval_expr(expr, bindings)?.truthy())
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => arith(op, l, r),
        Eq => Ok(Value::Bool(l == r)),
        Ne => Ok(Value::Bool(l != r)),
        Lt => Ok(Value::Bool(l < r)),
        Le => Ok(Value::Bool(l <= r)),
        Gt => Ok(Value::Bool(l > r)),
        Ge => Ok(Value::Bool(l >= r)),
        And => Ok(Value::Bool(l.truthy() && r.truthy())),
        Or => Ok(Value::Bool(l.truthy() || r.truthy())),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Infinity is absorbing for addition (cost arithmetic).
    if matches!(op, BinOp::Add) && (matches!(l, Value::Infinity) || matches!(r, Value::Infinity)) {
        return Ok(Value::Infinity);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                BinOp::Add => a.wrapping_add(*b),
                BinOp::Sub => a.wrapping_sub(*b),
                BinOp::Mul => a.wrapping_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(RuntimeError::eval("division by zero"));
                    }
                    a / b
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(RuntimeError::eval("modulo by zero"));
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Int(v))
        }
        (Value::Str(a), Value::Str(b)) if op == BinOp::Add => Ok(Value::Str(format!("{a}{b}"))),
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(RuntimeError::eval(format!(
                        "cannot apply `{}` to {l} and {r}",
                        op.symbol()
                    )))
                }
            };
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(RuntimeError::eval("division by zero"));
                    }
                    a / b
                }
                BinOp::Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Double(v))
        }
    }
}

/// Call a builtin function by name.
///
/// The set of builtins matches [`ndlog::builtins::BUILTINS`]; the validator
/// guarantees arity, but we re-check defensively because the proxy calls these
/// directly with observed values.
pub fn call_builtin(name: &str, args: &[Value]) -> Result<Value> {
    let wrong_arity = |n: usize| {
        RuntimeError::eval(format!(
            "builtin `{name}` expects {n} argument(s), got {}",
            args.len()
        ))
    };
    match name {
        "f_initlist" => {
            if args.len() != 1 {
                return Err(wrong_arity(1));
            }
            Ok(Value::List(vec![args[0].clone()]))
        }
        "f_initlist2" => {
            if args.len() != 2 {
                return Err(wrong_arity(2));
            }
            Ok(Value::List(vec![args[0].clone(), args[1].clone()]))
        }
        "f_concat" => {
            if args.len() != 2 {
                return Err(wrong_arity(2));
            }
            let mut out = match &args[0] {
                Value::List(l) => l.clone(),
                v => vec![v.clone()],
            };
            match &args[1] {
                Value::List(l) => out.extend(l.iter().cloned()),
                v => out.push(v.clone()),
            }
            Ok(Value::List(out))
        }
        "f_append" => {
            if args.len() != 2 {
                return Err(wrong_arity(2));
            }
            let mut l = list_arg(name, &args[0])?.to_vec();
            l.push(args[1].clone());
            Ok(Value::List(l))
        }
        "f_prepend" => {
            if args.len() != 2 {
                return Err(wrong_arity(2));
            }
            // f_prepend(X, List) -> [X | List]  (matches the path-vector idiom
            // `P := f_prepend(S, P2)`).
            let l = list_arg(name, &args[1])?;
            let mut out = Vec::with_capacity(l.len() + 1);
            out.push(args[0].clone());
            out.extend(l.iter().cloned());
            Ok(Value::List(out))
        }
        "f_member" => {
            if args.len() != 2 {
                return Err(wrong_arity(2));
            }
            let l = list_arg(name, &args[0])?;
            Ok(Value::Int(l.contains(&args[1]) as i64))
        }
        "f_last" => {
            if args.len() != 1 {
                return Err(wrong_arity(1));
            }
            let l = list_arg(name, &args[0])?;
            l.last()
                .cloned()
                .ok_or_else(|| RuntimeError::eval("f_last of empty list"))
        }
        "f_first" => {
            if args.len() != 1 {
                return Err(wrong_arity(1));
            }
            let l = list_arg(name, &args[0])?;
            l.first()
                .cloned()
                .ok_or_else(|| RuntimeError::eval("f_first of empty list"))
        }
        "f_size" => {
            if args.len() != 1 {
                return Err(wrong_arity(1));
            }
            let l = list_arg(name, &args[0])?;
            Ok(Value::Int(l.len() as i64))
        }
        "f_isExtend" => {
            if args.len() != 3 {
                return Err(wrong_arity(3));
            }
            Ok(Value::Int(is_extend(&args[0], &args[1], &args[2]) as i64))
        }
        "f_min" => {
            if args.len() != 2 {
                return Err(wrong_arity(2));
            }
            Ok(std::cmp::min(&args[0], &args[1]).clone())
        }
        "f_max" => {
            if args.len() != 2 {
                return Err(wrong_arity(2));
            }
            Ok(std::cmp::max(&args[0], &args[1]).clone())
        }
        "f_abs" => {
            if args.len() != 1 {
                return Err(wrong_arity(1));
            }
            match &args[0] {
                Value::Int(v) => Ok(Value::Int(v.abs())),
                Value::Double(v) => Ok(Value::Double(v.abs())),
                other => Err(RuntimeError::eval(format!("f_abs of non-number {other}"))),
            }
        }
        "f_sha1" => {
            if args.len() != 1 {
                return Err(wrong_arity(1));
            }
            let mut h = StableHasher::new();
            args[0].stable_hash_into(&mut h);
            Ok(Value::Id(h.finish()))
        }
        "f_tostr" => {
            if args.len() != 1 {
                return Err(wrong_arity(1));
            }
            Ok(Value::Str(args[0].to_string()))
        }
        other => Err(RuntimeError::eval(format!("unknown builtin `{other}`"))),
    }
}

fn list_arg<'a>(func: &str, v: &'a Value) -> Result<&'a [Value]> {
    v.as_list()
        .ok_or_else(|| RuntimeError::eval(format!("{func}: expected a list, got {v}")))
}

/// `f_isExtend(route2, route1, n)`: true when `route2` is `route1` with the
/// node `n` prepended — the check the paper's `maybe` rule `br1` uses to infer
/// that an outgoing BGP advertisement was caused by an incoming one.
pub fn is_extend(route2: &Value, route1: &Value, node: &Value) -> bool {
    match (route2.as_list(), route1.as_list()) {
        (Some(r2), Some(r1)) => r2.len() == r1.len() + 1 && &r2[0] == node && &r2[1..] == r1,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog::parse_rule;

    fn bindings(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn eval_str(expr_src: &str, b: &Bindings) -> Result<Value> {
        // Parse through a dummy rule to reuse the expression parser.
        let rule = parse_rule(&format!("r1 out(@A,X) :- in(@A), X := {expr_src}."))
            .expect("test expression parses");
        match &rule.body[1] {
            ndlog::BodyElem::Assign { expr, .. } => eval_expr(expr, b),
            _ => unreachable!(),
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        let b = bindings(&[("A", Value::Int(2)), ("B", Value::Int(5))]);
        assert_eq!(eval_str("A + B * 2", &b).unwrap(), Value::Int(12));
        assert_eq!(eval_str("(A + B) * 2", &b).unwrap(), Value::Int(14));
        assert_eq!(eval_str("B % A", &b).unwrap(), Value::Int(1));
        assert_eq!(eval_str("B / A", &b).unwrap(), Value::Int(2));
    }

    #[test]
    fn mixed_int_double_arithmetic() {
        let b = bindings(&[("A", Value::Int(2)), ("B", Value::Double(0.5))]);
        assert_eq!(eval_str("A + B", &b).unwrap(), Value::Double(2.5));
    }

    #[test]
    fn infinity_absorbs_addition() {
        let b = bindings(&[("A", Value::Infinity), ("B", Value::Int(3))]);
        assert_eq!(eval_str("A + B", &b).unwrap(), Value::Infinity);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let b = bindings(&[("A", Value::Int(1)), ("B", Value::Int(0))]);
        assert!(eval_str("A / B", &b).is_err());
        assert!(eval_str("A % B", &b).is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        let b = bindings(&[("A", Value::Int(2)), ("B", Value::Int(5))]);
        assert_eq!(eval_str("A < B", &b).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("A == 2 && B == 5", &b).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("A > B || B >= 5", &b).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("A != 2", &b).unwrap(), Value::Bool(false));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let err = eval_str("Z + 1", &Bindings::new()).unwrap_err();
        assert!(err.to_string().contains("unbound"));
    }

    #[test]
    fn list_builtins() {
        let b = bindings(&[
            ("S", Value::addr("n1")),
            ("D", Value::addr("n2")),
            ("P", Value::List(vec![Value::addr("n2"), Value::addr("n3")])),
        ]);
        assert_eq!(
            eval_str("f_initlist2(S, D)", &b).unwrap(),
            Value::List(vec![Value::addr("n1"), Value::addr("n2")])
        );
        assert_eq!(
            eval_str("f_prepend(S, P)", &b).unwrap(),
            Value::List(vec![
                Value::addr("n1"),
                Value::addr("n2"),
                Value::addr("n3")
            ])
        );
        assert_eq!(eval_str("f_member(P, S)", &b).unwrap(), Value::Int(0));
        assert_eq!(eval_str("f_member(P, D)", &b).unwrap(), Value::Int(1));
        assert_eq!(eval_str("f_size(P)", &b).unwrap(), Value::Int(2));
        assert_eq!(eval_str("f_last(P)", &b).unwrap(), Value::addr("n3"));
        assert_eq!(eval_str("f_first(P)", &b).unwrap(), Value::addr("n2"));
    }

    #[test]
    fn is_extend_matches_bgp_prepending() {
        let r1 = Value::List(vec![Value::addr("AS2"), Value::addr("AS3")]);
        let r2 = Value::List(vec![
            Value::addr("AS1"),
            Value::addr("AS2"),
            Value::addr("AS3"),
        ]);
        assert!(is_extend(&r2, &r1, &Value::addr("AS1")));
        assert!(!is_extend(&r2, &r1, &Value::addr("AS9")));
        assert!(!is_extend(&r1, &r2, &Value::addr("AS1")));
        // Non-list arguments never match.
        assert!(!is_extend(&Value::Int(1), &r1, &Value::addr("AS1")));
    }

    #[test]
    fn misc_builtins() {
        assert_eq!(
            call_builtin("f_min", &[Value::Int(3), Value::Int(5)]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call_builtin("f_max", &[Value::Int(3), Value::Int(5)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            call_builtin("f_abs", &[Value::Int(-3)]).unwrap(),
            Value::Int(3)
        );
        assert!(matches!(
            call_builtin("f_sha1", &[Value::str("x")]).unwrap(),
            Value::Id(_)
        ));
        assert_eq!(
            call_builtin("f_tostr", &[Value::Int(7)]).unwrap(),
            Value::str("7")
        );
        assert!(call_builtin("f_nosuch", &[]).is_err());
        assert!(call_builtin("f_last", &[Value::List(vec![])]).is_err());
        assert!(call_builtin("f_size", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn filter_coercion_follows_truthiness() {
        let b = bindings(&[("X", Value::Int(3))]);
        let rule = parse_rule("r1 out(@A,X) :- in(@A,X), f_abs(X) == 3.").unwrap();
        match &rule.body[1] {
            ndlog::BodyElem::Filter(e) => assert!(eval_filter(e, &b).unwrap()),
            _ => unreachable!(),
        }
    }
}
