//! Compilation of validated NDlog programs into the runtime representation.
//!
//! Compilation performs, in order: validation, automatic localization
//! ([`crate::transform::localize_program`]), catalog construction, and
//! per-rule analysis (execution location, aggregate detection, trigger
//! tables). The result is shared (via `Arc`) by every node engine in a
//! deployment — nodes differ only in their data, not in their code, just as a
//! RapidNet binary is identical on every node.

use crate::catalog::Catalog;
use crate::error::{Result, RuntimeError};
use crate::value::Sym;
use ndlog::localize::{localize_rule, RuleLocation};
use ndlog::{AggregateFunc, BodyElem, Literal, Predicate, Program, Rule, RuleKind, Term};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};

/// Aggregate specification for rules such as `minCost(@S,D,min<C>) :- ...`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggregateFunc,
    /// Column of the head that receives the aggregate value.
    pub agg_col: usize,
    /// The aggregated body variable (`*` for `count<*>`).
    pub var: String,
}

/// How a column of a body atom is bound at probe time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundTerm {
    /// The column carries a constant from the rule text.
    Const(Literal),
    /// The column carries a variable bound by an earlier atom in the plan
    /// (or by the trigger delta).
    Var(String),
}

/// How a plan step expects [`crate::store::Table::probe`] to find its
/// candidates, decided per bound set at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeStrategy {
    /// No column is bound when the step runs: the probe degrades to a
    /// key-order scan of the whole table (a contiguous column sweep in the
    /// columnar backing).
    ColumnScan,
    /// At least one bound column: the probe anchors on the most selective
    /// posting list among them and verifies the residual bound columns
    /// against the stored columns.
    PostingList,
}

/// One step of a join plan: which atom to join next and which of its columns
/// are already bound — the columns [`crate::store::Table::probe`] can use for
/// an index lookup instead of a scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanStep {
    /// Index into [`CompiledRule::positive`].
    pub atom: usize,
    /// `(column, binding source)` pairs known bound when this step runs.
    pub bound_cols: Vec<(usize, BoundTerm)>,
    /// How the probe kernel will evaluate this step.
    pub strategy: ProbeStrategy,
}

/// A per-trigger join plan: the order in which the remaining positive atoms
/// are joined after a delta arrives, chosen greedily by bound-variable
/// connectivity (most bound columns first, earliest atom on ties). Computed
/// once at compile time so the engine never re-derives it per delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinPlan {
    /// The triggering atom position (`None` for full recomputation plans,
    /// where every atom appears in `steps`).
    pub trigger: Option<usize>,
    /// The remaining atoms, in join order.
    pub steps: Vec<PlanStep>,
}

/// Variables bound by matching an atom.
fn atom_vars(atom: &Predicate) -> BTreeSet<String> {
    atom.terms
        .iter()
        .filter_map(|t| match t {
            Term::Variable { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

/// The columns of `atom` that are bound given `bound_vars`: constants and
/// variables already bound.
fn bound_cols_of(atom: &Predicate, bound_vars: &BTreeSet<String>) -> Vec<(usize, BoundTerm)> {
    atom.terms
        .iter()
        .enumerate()
        .filter_map(|(col, term)| match term {
            Term::Constant { value, .. } => Some((col, BoundTerm::Const(value.clone()))),
            Term::Variable { name, .. } if bound_vars.contains(name) => {
                Some((col, BoundTerm::Var(name.clone())))
            }
            _ => None,
        })
        .collect()
}

/// Build the join plan for `positive` triggered at `trigger` (or a full
/// recomputation plan when `trigger` is `None`).
fn build_join_plan(positive: &[Predicate], trigger: Option<usize>) -> JoinPlan {
    let mut bound_vars = trigger.map(|t| atom_vars(&positive[t])).unwrap_or_default();
    let mut remaining: Vec<usize> = (0..positive.len())
        .filter(|i| Some(*i) != trigger)
        .collect();
    let mut steps = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (pick, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &atom_idx)| {
                (
                    bound_cols_of(&positive[atom_idx], &bound_vars).len(),
                    Reverse(atom_idx),
                )
            })
            .expect("remaining is non-empty");
        let atom_idx = remaining.remove(pick);
        let bound_cols = bound_cols_of(&positive[atom_idx], &bound_vars);
        bound_vars.extend(atom_vars(&positive[atom_idx]));
        let strategy = if bound_cols.is_empty() {
            ProbeStrategy::ColumnScan
        } else {
            ProbeStrategy::PostingList
        };
        steps.push(PlanStep {
            atom: atom_idx,
            bound_cols,
            strategy,
        });
    }
    JoinPlan { trigger, steps }
}

/// One executable rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledRule {
    /// The (localized) source rule.
    pub rule: Rule,
    /// The rule name, interned once at compile time (what firings carry).
    pub name_sym: Sym,
    /// Interned relation names of `positive`, in the same order (what the
    /// join hot path uses for table lookups).
    pub positive_syms: Vec<Sym>,
    /// Index of this rule within the compiled program.
    pub index: usize,
    /// Where the rule executes.
    pub exec: RuleLocation,
    /// Location column of the head relation.
    pub head_loc_col: usize,
    /// Positive body atoms, in body order.
    pub positive: Vec<Predicate>,
    /// Negated body atoms.
    pub negated: Vec<Predicate>,
    /// Assignments and filters, in body order.
    pub steps: Vec<BodyElem>,
    /// Aggregate specification, if the head contains one.
    pub aggregate: Option<AggSpec>,
    /// Join plans, one per positive atom: `plans[i]` joins the remaining
    /// atoms after a delta bound to atom `i`.
    pub plans: Vec<JoinPlan>,
    /// Plan joining *all* positive atoms from scratch (used by
    /// reconciliation of rules with negation).
    pub full_plan: JoinPlan,
    /// For each negated atom, the columns bound once the whole positive body
    /// (plus assignments) is bound — the probe set for existence checks.
    pub negated_probes: Vec<Vec<(usize, BoundTerm)>>,
    /// For aggregate rules, the columns of the single body atom bound by the
    /// group key — the probe set for group recomputation.
    pub aggregate_probe: Vec<(usize, BoundTerm)>,
}

impl CompiledRule {
    /// True when the rule needs non-monotonic (reconciliation-based)
    /// maintenance: it has negated body atoms.
    pub fn has_negation(&self) -> bool {
        !self.negated.is_empty()
    }
}

/// A fully compiled program, shared by all node engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The program as written by the user (pre-localization).
    pub source: Program,
    /// The localized program that actually executes.
    pub localized: Program,
    /// Relation schemas.
    pub catalog: Catalog,
    /// Executable rules (maybe rules are excluded — they are evaluated by the
    /// legacy-application proxy, not by the engine).
    pub rules: Vec<CompiledRule>,
    /// relation symbol -> (rule index, positive-atom index) pairs to evaluate
    /// when a delta of that relation arrives.
    pub triggers: HashMap<Sym, Vec<(usize, usize)>>,
    /// relation symbol -> rule indices that must be *reconciled* when the
    /// relation changes (rules where the relation appears negated).
    pub negation_triggers: HashMap<Sym, Vec<usize>>,
}

impl CompiledProgram {
    /// Compile NDlog source text (parse, validate, localize, analyze).
    pub fn from_source(src: &str) -> Result<Self> {
        let program = ndlog::compile(src)?;
        Self::from_program(program)
    }

    /// Compile an already-parsed program (it is re-validated).
    pub fn from_program(program: Program) -> Result<Self> {
        ndlog::validate_program(&program)?;
        let localized = crate::transform::localize_program(&program)?;
        ndlog::validate_program(&localized)?;
        let catalog = Catalog::from_program(&localized)?;

        let mut rules = Vec::new();
        let mut triggers: HashMap<Sym, Vec<(usize, usize)>> = HashMap::new();
        let mut negation_triggers: HashMap<Sym, Vec<usize>> = HashMap::new();

        for rule in &localized.rules {
            if rule.kind == RuleKind::Maybe {
                continue;
            }
            let index = rules.len();
            let compiled = compile_rule(rule, index, &catalog)?;
            for (atom_idx, atom) in compiled.positive.iter().enumerate() {
                triggers
                    .entry(Sym::new(&atom.relation))
                    .or_default()
                    .push((index, atom_idx));
            }
            for atom in &compiled.negated {
                negation_triggers
                    .entry(Sym::new(&atom.relation))
                    .or_default()
                    .push(index);
            }
            rules.push(compiled);
        }

        Ok(CompiledProgram {
            source: program,
            localized,
            catalog,
            rules,
            triggers,
            negation_triggers,
        })
    }

    /// The `maybe` rules of the source program (used by the legacy proxy).
    pub fn maybe_rules(&self) -> Vec<&Rule> {
        self.source
            .rules
            .iter()
            .filter(|r| r.kind == RuleKind::Maybe)
            .collect()
    }

    /// Find a compiled rule by name.
    pub fn rule(&self, name: &str) -> Option<&CompiledRule> {
        self.rules.iter().find(|r| r.rule.name == name)
    }
}

fn compile_rule(rule: &Rule, index: usize, catalog: &Catalog) -> Result<CompiledRule> {
    let localized = localize_rule(rule)?;
    if !localized.remote_locations.is_empty() {
        return Err(RuntimeError::compile(
            Some(&rule.name),
            "rule is not local after localization (internal error)",
        ));
    }
    let head_schema = catalog.schema(&rule.head.relation).ok_or_else(|| {
        RuntimeError::compile(Some(&rule.name), "head relation missing from catalog")
    })?;

    let mut positive = Vec::new();
    let mut negated = Vec::new();
    let mut steps = Vec::new();
    for elem in &rule.body {
        match elem {
            BodyElem::Atom(p) if p.negated => negated.push(p.clone()),
            BodyElem::Atom(p) => positive.push(p.clone()),
            other => steps.push(other.clone()),
        }
    }

    let aggregate = rule.head.aggregate_column().map(|(col, agg)| AggSpec {
        func: agg.func,
        agg_col: col,
        var: agg.var.clone(),
    });

    if let Some(spec) = &aggregate {
        if positive.len() != 1 {
            return Err(RuntimeError::compile(
                Some(&rule.name),
                "aggregate rules must have exactly one positive body atom",
            ));
        }
        if !negated.is_empty() {
            return Err(RuntimeError::compile(
                Some(&rule.name),
                "aggregate rules cannot contain negation",
            ));
        }
        if spec.func == AggregateFunc::Count && spec.var == "*" {
            // fine: count<*> needs no bound variable
        }
    }

    // Wildcards in heads are not executable.
    if rule.head.terms.iter().any(|t| matches!(t, Term::Wildcard)) {
        return Err(RuntimeError::compile(
            Some(&rule.name),
            "rule heads cannot contain wildcards",
        ));
    }

    // Join plans: one per trigger position plus the full-recompute plan.
    let plans: Vec<JoinPlan> = (0..positive.len())
        .map(|t| build_join_plan(&positive, Some(t)))
        .collect();
    let full_plan = build_join_plan(&positive, None);

    // After the positive body matched, every positive variable plus every
    // assigned variable is bound; negated atoms probe with those.
    let mut body_vars: BTreeSet<String> = positive.iter().flat_map(atom_vars).collect();
    for step in &steps {
        if let BodyElem::Assign { var, .. } = step {
            body_vars.insert(var.clone());
        }
    }
    let negated_probes: Vec<Vec<(usize, BoundTerm)>> = negated
        .iter()
        .map(|n| bound_cols_of(n, &body_vars))
        .collect();

    // Aggregate rules re-scan their group: the group key binds the head
    // variables outside the aggregate column.
    let aggregate_probe = match &aggregate {
        Some(spec) => {
            let group_vars: BTreeSet<String> = rule
                .head
                .terms
                .iter()
                .enumerate()
                .filter(|(idx, _)| *idx != spec.agg_col)
                .filter_map(|(_, t)| match t {
                    Term::Variable { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .collect();
            bound_cols_of(&positive[0], &group_vars)
        }
        None => Vec::new(),
    };

    Ok(CompiledRule {
        name_sym: Sym::new(&rule.name),
        positive_syms: positive.iter().map(|p| Sym::new(&p.relation)).collect(),
        rule: rule.clone(),
        index,
        exec: localized.exec_location,
        head_loc_col: head_schema.location_col,
        positive,
        negated,
        steps,
        aggregate,
        plans,
        full_plan,
        negated_probes,
        aggregate_probe,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINCOST: &str = "materialize(link, infinity, infinity, keys(1,2,3)).\n\
         materialize(cost, infinity, infinity, keys(1,2,3)).\n\
         materialize(minCost, infinity, infinity, keys(1,2)).\n\
         r1 cost(@S,D,C) :- link(@S,D,C).\n\
         r2 cost(@S,D,C) :- link(@S,Z,C1), minCost(@Z,D,C2), C := C1 + C2.\n\
         r3 minCost(@S,D,min<C>) :- cost(@S,D,C).";

    #[test]
    fn compiles_mincost_with_localization() {
        let cp = CompiledProgram::from_source(MINCOST).unwrap();
        // r1, r2_s1, r2, r3
        assert_eq!(cp.rules.len(), 4);
        assert!(cp.rule("r2_s1").is_some());
        let r3 = cp.rule("r3").unwrap();
        assert!(r3.aggregate.is_some());
        assert_eq!(r3.aggregate.as_ref().unwrap().agg_col, 2);
        // link triggers r1 and the ship rule.
        let link_triggers = &cp.triggers[&Sym::new("link")];
        assert_eq!(link_triggers.len(), 2);
        // The aux relation exists in the catalog.
        assert!(cp.catalog.schema("r2_aux").is_some());
    }

    #[test]
    fn maybe_rules_are_kept_out_of_the_engine() {
        let cp = CompiledProgram::from_source(
            "br1 outputRoute(@AS,R2,P) ?- inputRoute(@AS,R1,P), f_isExtend(R2,R1,AS) == 1.\n\
             r1 seen(@AS,P) :- inputRoute(@AS,R1,P).",
        )
        .unwrap();
        assert_eq!(cp.rules.len(), 1);
        assert_eq!(cp.maybe_rules().len(), 1);
        assert_eq!(cp.maybe_rules()[0].name, "br1");
    }

    #[test]
    fn rejects_aggregate_with_join_body() {
        let err = CompiledProgram::from_source("r1 agg(@S,min<C>) :- cost(@S,D,C), link(@S,D,C2).")
            .unwrap_err();
        assert!(err.to_string().contains("exactly one positive body atom"));
    }

    #[test]
    fn invalid_programs_are_rejected_at_compile_time() {
        assert!(CompiledProgram::from_source("r1 out(@A,X) :- link(@A,B).").is_err());
    }

    #[test]
    fn join_plans_probe_on_connected_columns() {
        let cp = CompiledProgram::from_source("r1 out(@S,D) :- a(@S,Z), b(@S,Z,D).").unwrap();
        let rule = cp.rule("r1").unwrap();
        assert_eq!(rule.plans.len(), 2);

        // Triggered by atom 0 (binds S, Z): atom 1 probes on columns 0 and 1.
        let plan = &rule.plans[0];
        assert_eq!(plan.trigger, Some(0));
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].atom, 1);
        let cols: Vec<usize> = plan.steps[0].bound_cols.iter().map(|(c, _)| *c).collect();
        assert_eq!(cols, vec![0, 1]);
        assert!(matches!(&plan.steps[0].bound_cols[0].1, BoundTerm::Var(v) if v == "S"));

        // Triggered by atom 1 (binds S, Z, D): atom 0 fully bound.
        let plan = &rule.plans[1];
        assert_eq!(plan.steps[0].atom, 0);
        assert_eq!(plan.steps[0].bound_cols.len(), 2);

        // Full plan starts from a scan and then probes.
        assert_eq!(rule.full_plan.trigger, None);
        assert_eq!(rule.full_plan.steps.len(), 2);
        assert!(rule.full_plan.steps[0].bound_cols.is_empty());
        assert!(!rule.full_plan.steps[1].bound_cols.is_empty());
    }

    #[test]
    fn plan_steps_pick_scan_or_posting_list_per_bound_set() {
        let cp = CompiledProgram::from_source("r1 out(@S,D) :- a(@S,Z), b(@S,Z,D).").unwrap();
        let rule = cp.rule("r1").unwrap();
        // Delta-triggered steps always have bound columns (the trigger binds
        // shared variables) -> posting-list probes.
        assert_eq!(rule.plans[0].steps[0].strategy, ProbeStrategy::PostingList);
        assert_eq!(rule.plans[1].steps[0].strategy, ProbeStrategy::PostingList);
        // A full-recompute plan starts unbound -> column scan, then probes.
        assert_eq!(rule.full_plan.steps[0].strategy, ProbeStrategy::ColumnScan);
        assert_eq!(rule.full_plan.steps[1].strategy, ProbeStrategy::PostingList);
    }

    #[test]
    fn join_plans_carry_constants_and_negation_probes() {
        let cp =
            CompiledProgram::from_source("r1 out(@S) :- a(@S,Z), b(@S,Z,5), !c(@S,Z).").unwrap();
        let rule = cp.rule("r1").unwrap();
        // Triggered by atom 0: atom 1 is probed on S, Z and the constant 5.
        let step = &rule.plans[0].steps[0];
        assert_eq!(step.atom, 1);
        assert_eq!(step.bound_cols.len(), 3);
        assert!(matches!(&step.bound_cols[2].1, BoundTerm::Const(_)));
        // The negated atom is fully bound by the positive body.
        assert_eq!(rule.negated_probes.len(), 1);
        assert_eq!(rule.negated_probes[0].len(), 2);
    }

    #[test]
    fn aggregate_rules_probe_their_group_columns() {
        let cp = CompiledProgram::from_source(
            "materialize(minCost, infinity, infinity, keys(1,2)).\n\
             r3 minCost(@S,D,min<C>) :- cost(@S,D,C).",
        )
        .unwrap();
        let rule = cp.rule("r3").unwrap();
        // Group key (S, D) binds the first two columns of `cost`.
        let cols: Vec<usize> = rule.aggregate_probe.iter().map(|(c, _)| *c).collect();
        assert_eq!(cols, vec![0, 1]);
    }

    #[test]
    fn negation_triggers_are_recorded() {
        let cp =
            CompiledProgram::from_source("r1 isolated(@N,M) :- node(@N), peer(@N,M), !link(@N,M).")
                .unwrap();
        assert_eq!(cp.negation_triggers[&Sym::new("link")], vec![0]);
        assert!(cp.rules[0].has_negation());
    }
}
