//! Runtime values and stable hashing.
//!
//! NDlog tuples carry dynamically typed values. The value type needs a *total*
//! order (aggregates such as `min<C>` must order any two values a program
//! compares) and a *stable* 64-bit digest: provenance vertex identifiers (VIDs)
//! are content hashes of tuples, and they must be identical on every node and
//! across runs so that distributed provenance queries can follow them.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

pub use nt_intern::{
    dict_entry_wire_size, rule_exec_digest, shard_route, Interner, InternerSnapshot, NodeId,
    StableHasher, Sym,
};

/// A network address / node name. NetTrails identifies nodes by name (the
/// paper shows addresses such as `node1`); the simulator maps names to
/// simulated endpoints. Addresses are interned: an `Addr` is a 4-byte handle
/// ([`NodeId`]) into the process-global string arena, so cloning, hashing and
/// equality on the maintenance and query hot paths never touch string data.
/// Strings appear only at the API boundary (`&str` in, `Display`/serde out).
pub type Addr = NodeId;

/// Dynamically typed runtime value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Signed 64-bit integer.
    Int(i64),
    /// IEEE double. Ordered with a total order (NaN sorts last).
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Network address (node name / AS name). Kept distinct from `Str` so the
    /// provenance graph and the visualizer can recognise locations.
    Addr(Addr),
    /// Homogeneous or heterogeneous list (paths, AS paths, source routes).
    List(Vec<Value>),
    /// Opaque 64-bit identifier (provenance VIDs/RIDs travel as values).
    Id(u64),
    /// Sentinel "infinity" used as an unreachable cost.
    Infinity,
}

impl Value {
    /// Build an address value (interning the name).
    pub fn addr(a: impl Into<Addr>) -> Value {
        Value::Addr(a.into())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Interpret the value as an integer if possible (bools coerce to 0/1).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interpret the value as a float if possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as a boolean. Integers are truthy when non-zero —
    /// this is what lets NDlog write `f_member(P, S) == 0` style tests.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Double(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Addr(a) => !a.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Id(v) => *v != 0,
            Value::Infinity => true,
        }
    }

    /// The address, if this is an address value.
    pub fn as_addr(&self) -> Option<&str> {
        match self {
            Value::Addr(a) => Some(a.as_str()),
            // Location columns written as string constants also work.
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The interned node id, if this is an address value (string constants in
    /// location columns are interned on the way out).
    pub fn as_node_id(&self) -> Option<NodeId> {
        match self {
            Value::Addr(a) => Some(*a),
            Value::Str(s) => Some(NodeId::new(s)),
            _ => None,
        }
    }

    /// The list elements, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Numeric rank of the variant, used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Double(_) => 1, // numbers compare with each other
            Value::Str(_) => 2,
            Value::Addr(_) => 3,
            Value::List(_) => 4,
            Value::Id(_) => 5,
            Value::Infinity => 6,
        }
    }

    /// Feed the value into a stable FNV-1a style hasher.
    pub fn stable_hash_into(&self, h: &mut StableHasher) {
        match self {
            Value::Int(v) => {
                h.write_u8(1);
                h.write_u64(*v as u64);
            }
            Value::Double(v) => {
                h.write_u8(2);
                h.write_u64(v.to_bits());
            }
            Value::Str(s) => {
                h.write_u8(3);
                h.write_bytes(s.as_bytes());
            }
            Value::Bool(b) => {
                h.write_u8(4);
                h.write_u8(*b as u8);
            }
            Value::Addr(a) => {
                h.write_u8(5);
                h.write_bytes(a.as_bytes());
            }
            Value::List(l) => {
                h.write_u8(6);
                h.write_u64(l.len() as u64);
                for v in l {
                    v.stable_hash_into(h);
                }
            }
            Value::Id(v) => {
                h.write_u8(7);
                h.write_u64(*v);
            }
            Value::Infinity => h.write_u8(8),
        }
    }

    /// Approximate serialized size in bytes, used by the simulator for traffic
    /// accounting (the paper's query-optimization experiments measure network
    /// traffic).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Double(_) | Value::Id(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 4 + s.len(),
            // Addresses ship as fixed-width interned ids; the dictionary is
            // carried once per snapshot (see `InternerSnapshot::wire_size`),
            // not per message.
            Value::Addr(_) => NodeId::WIRE_SIZE,
            Value::List(l) => 4 + l.iter().map(Value::wire_size).sum::<usize>(),
            Value::Infinity => 1,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => total_f64_cmp(*a, *b),
            (Int(a), Double(b)) => total_f64_cmp(*a as f64, *b),
            (Double(a), Int(b)) => total_f64_cmp(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Addr(a), Addr(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (Id(a), Id(b)) => a.cmp(b),
            (Infinity, Infinity) => Ordering::Equal,
            // Infinity is greater than any number (cost sentinel semantics).
            (Infinity, Int(_)) | (Infinity, Double(_)) => Ordering::Greater,
            (Int(_), Infinity) | (Double(_), Infinity) => Ordering::Less,
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut sh = StableHasher::new();
        self.stable_hash_into(&mut sh);
        state.write_u64(sh.finish());
    }
}

/// Value equality that treats `Addr` and `Str` with the same text as equal
/// (programs write location constants as strings; tuples carry addresses).
/// This is the matching predicate of the whole evaluation layer — join
/// binding checks, literal matching and the storage layer's column matchers
/// all agree on it.
pub fn values_match(a: &Value, b: &Value) -> bool {
    if a == b {
        return true;
    }
    match (a, b) {
        (Value::Addr(x), Value::Str(y)) | (Value::Str(y), Value::Addr(x)) => *x == **y,
        _ => false,
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaNs sort after everything; two NaNs are equal.
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!(),
        }
    })
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Addr(a) => write!(f, "{a}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Id(v) => write!(f, "#{v:x}"),
            Value::Infinity => write!(f, "infinity"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_infinity_is_largest_number() {
        let mut vals = vec![
            Value::Int(3),
            Value::Infinity,
            Value::Double(2.5),
            Value::Int(-1),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Int(-1),
                Value::Double(2.5),
                Value::Int(3),
                Value::Infinity
            ]
        );
    }

    #[test]
    fn ints_and_doubles_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Double(2.0));
        assert!(Value::Int(2) < Value::Double(2.5));
        assert!(Value::Double(3.0) > Value::Int(2));
    }

    #[test]
    fn nan_sorts_last_among_numbers() {
        assert!(Value::Double(f64::NAN) > Value::Double(1e300));
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
    }

    #[test]
    fn truthiness_follows_ndlog_conventions() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::List(vec![]).truthy());
    }

    #[test]
    fn stable_hash_is_deterministic_and_distinguishes_types() {
        let h1 = {
            let mut h = StableHasher::new();
            Value::Int(65).stable_hash_into(&mut h);
            h.finish()
        };
        let h2 = {
            let mut h = StableHasher::new();
            Value::Int(65).stable_hash_into(&mut h);
            h.finish()
        };
        let h3 = {
            let mut h = StableHasher::new();
            Value::Str("A".into()).stable_hash_into(&mut h);
            h.finish()
        };
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn wire_size_counts_nested_lists() {
        let v = Value::List(vec![Value::Int(1), Value::str("ab")]);
        assert_eq!(v.wire_size(), 4 + 8 + (4 + 2));
    }

    #[test]
    fn addr_accessor_accepts_strings_too() {
        assert_eq!(Value::addr("n1").as_addr(), Some("n1"));
        assert_eq!(Value::str("n2").as_addr(), Some("n2"));
        assert_eq!(Value::Int(1).as_addr(), None);
    }
}
