//! The trace-driven workload driver: build the platform, converge, replay.
//!
//! Replay advances the simulated clock to each trace step's timestamp, feeds
//! churn through [`NetTrails::apply_topology_event`] (link tuples retract and
//! reinsert, protocols re-converge incrementally) and runs query storms as
//! concurrent distributed sessions — submit every handle, then drain them off
//! one shared network, so sessions genuinely overlap on the wire and each
//! [`provenance::QueryStats::latency_ms`] is the simulated-clock span of
//! that session.
//!
//! The outcome carries a replay digest over sorted result-relation dumps,
//! measured latencies and simulated-clock counters — everything a second run
//! of the same spec must reproduce bit-for-bit, and nothing (wall clock,
//! interner ids) a different machine would change.

use crate::programs::{self, MIXED_RESULTS, PATHVECTOR_RESULTS};
use crate::spec::{ScenarioSpec, WorkloadKind};
use crate::trace::{TraceAction, WorkloadTrace};
use crate::Fnv;
use nettrails::{NetTrails, NetTrailsConfig, RunReport};
use provenance::{QueryKind, TraversalOrder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simnet::{SimTime, Topology};
use std::time::Instant;

/// What a scenario replay produced. Wall-clock fields vary by machine; every
/// other field — and [`ScenarioOutcome::replay_digest`] in particular — is a
/// pure function of the [`ScenarioSpec`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Row identifier (`family_size_workload`).
    pub name: String,
    /// Topology family name.
    pub family: String,
    /// Workload kind name.
    pub workload: String,
    /// Nodes in the topology.
    pub nodes: usize,
    /// Directed links at generation time.
    pub links: usize,
    /// Anchor destinations routed toward.
    pub anchors: usize,
    /// Engine/network rounds to initial convergence.
    pub converge_rounds: usize,
    /// Tuples stored across all nodes after initial convergence.
    pub converged_tuples: usize,
    /// Wall-clock time of initial convergence (machine-dependent).
    pub converge_wall_ms: f64,
    /// Wall-clock time of the trace replay (machine-dependent).
    pub replay_wall_ms: f64,
    /// Simulated span of the replay.
    pub sim_ms: f64,
    /// Churn events replayed.
    pub churn_events: usize,
    /// Query sessions completed.
    pub queries: usize,
    /// Tuple insertions + deletions during replay (incremental recomputation
    /// volume).
    pub tuples_touched: usize,
    /// Network deliveries during replay.
    pub deliveries: usize,
    /// Measured per-session latencies, sorted ascending (simulated clock).
    pub latencies_ms: Vec<f64>,
    /// Digest of the generated topology (seed-determinism check).
    pub topo_digest: u64,
    /// Digest of the generated trace (seed-determinism check).
    pub trace_digest: u64,
    /// Digest of replayed state + measured latencies + counters.
    pub replay_digest: u64,
}

impl ScenarioOutcome {
    /// Median measured query latency (simulated milliseconds).
    pub fn p50_ms(&self) -> f64 {
        crate::percentile(&self.latencies_ms, 50.0)
    }

    /// 99th-percentile measured query latency (simulated milliseconds).
    pub fn p99_ms(&self) -> f64 {
        crate::percentile(&self.latencies_ms, 99.0)
    }

    /// Trace events (churn + queries) per wall-clock second of replay.
    pub fn events_per_sec(&self) -> f64 {
        let events = (self.churn_events + self.queries) as f64;
        events / (self.replay_wall_ms / 1000.0).max(1e-9)
    }

    /// Tuples touched per wall-clock second of replay.
    pub fn tuples_per_sec(&self) -> f64 {
        self.tuples_touched as f64 / (self.replay_wall_ms / 1000.0).max(1e-9)
    }
}

/// Machine-independent digest of a topology: sorted nodes and links with
/// costs and latencies.
pub fn topology_digest(topology: &Topology) -> u64 {
    let mut h = Fnv::default();
    for node in topology.nodes() {
        h.write(node.as_bytes());
        h.write(b"\n");
    }
    for link in topology.links() {
        h.write(
            format!(
                "{}>{}:{}:{}\n",
                link.from, link.to, link.cost, link.latency_ms
            )
            .as_bytes(),
        );
    }
    h.finish()
}

/// Run a scenario with the default single-worker engine configuration.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioOutcome {
    run_scenario_with_workers(spec, 1)
}

/// Run a scenario with `workers` fixpoint workers per engine generation. The
/// replay digest is identical at every worker count (the PR 6 bit-identity
/// contract) — the proptests hold the driver to that.
pub fn run_scenario_with_workers(spec: &ScenarioSpec, workers: usize) -> ScenarioOutcome {
    let topology = spec.family.build(spec.seed);
    let topo_digest = topology_digest(&topology);
    let trace = WorkloadTrace::generate(spec, &topology);
    let trace_digest = trace.digest();

    let (program, result_relations) = match spec.workload {
        WorkloadKind::Mixed => (programs::mixed_protocols(spec.max_hops), MIXED_RESULTS),
        _ => (
            programs::anchored_pathvector(spec.max_hops),
            PATHVECTOR_RESULTS,
        ),
    };
    let config = NetTrailsConfig {
        fixpoint_workers: workers,
        ..NetTrailsConfig::default()
    };
    let nodes = topology.node_count();
    let links = topology.link_count();
    let mut nt =
        NetTrails::new(&program, topology, config).expect("scenario program compiles and loads");

    // Seed base state: every link tuple plus the anchor advertisements.
    let converge_start = Instant::now();
    nt.seed_links_from_topology();
    for anchor in pick_anchors(spec, &mut nt) {
        let tuple = programs::anchor_tuple(&anchor);
        nt.insert_fact(&anchor, tuple);
    }
    let converge = nt.run_to_fixpoint();
    let converge_wall_ms = converge_start.elapsed().as_secs_f64() * 1000.0;
    let converged_tuples = nt.stats().stored_tuples;

    // Replay the trace.
    let replay_start = Instant::now();
    let t0 = nt.now();
    let mut qrng = StdRng::seed_from_u64(spec.seed ^ 0x6a09_e667_f3bc_c908);
    let mut churn_events = 0usize;
    let mut queries = 0usize;
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut replayed = RunReport::default();
    let accumulate = |sink: &mut RunReport, report: RunReport| {
        sink.deliveries += report.deliveries;
        sink.insertions += report.insertions;
        sink.deletions += report.deletions;
    };
    for step in &trace.steps {
        nt.advance_clock_to(t0 + SimTime::from_millis(step.at_ms));
        match &step.action {
            TraceAction::Churn(event) => {
                churn_events += 1;
                let report = nt.apply_topology_event(event);
                accumulate(&mut replayed, report);
            }
            TraceAction::QueryStorm { queries: count } => {
                let (done, stats) = run_storm(&mut nt, result_relations, *count, &mut qrng);
                queries += done;
                latencies_ms.extend(stats);
            }
        }
    }
    let replay_wall_ms = replay_start.elapsed().as_secs_f64() * 1000.0;
    let sim_ms = (nt.now().as_secs_f64() - t0.as_secs_f64()) * 1000.0;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    // Replay digest: final protocol state, measured latencies, and the
    // simulated-clock counters of the run.
    let mut h = Fnv::default();
    for rel in result_relations {
        let mut rows: Vec<String> = nt
            .relation(rel)
            .into_iter()
            .map(|(addr, tuple)| format!("{} {}", addr.as_str(), tuple))
            .collect();
        rows.sort();
        for row in rows {
            h.write(row.as_bytes());
            h.write(b"\n");
        }
    }
    for &l in &latencies_ms {
        h.write_f64(l);
    }
    h.write_u64(converge.rounds as u64);
    h.write_u64(replayed.insertions as u64);
    h.write_u64(replayed.deletions as u64);
    h.write_u64(replayed.deliveries as u64);
    h.write_f64(sim_ms);

    ScenarioOutcome {
        name: spec.name(),
        family: spec.family.name().to_string(),
        workload: spec.workload.name().to_string(),
        nodes,
        links,
        anchors: spec.anchors,
        converge_rounds: converge.rounds,
        converged_tuples,
        converge_wall_ms,
        replay_wall_ms,
        sim_ms,
        churn_events,
        queries,
        tuples_touched: replayed.insertions + replayed.deletions,
        deliveries: replayed.deliveries,
        latencies_ms,
        topo_digest,
        trace_digest,
        replay_digest: h.finish(),
    }
}

/// Seeded anchor pick: `spec.anchors` distinct connected nodes, chosen from
/// the sorted node list so the choice is machine-independent.
fn pick_anchors(spec: &ScenarioSpec, nt: &mut NetTrails) -> Vec<String> {
    let mut names: Vec<String> = nt
        .network()
        .topology()
        .nodes()
        .filter(|n| nt.network().topology().degree(n) > 0)
        .map(str::to_string)
        .collect();
    names.sort();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xbb67_ae85_84ca_a73b);
    let mut picked = Vec::new();
    while picked.len() < spec.anchors.min(names.len()) {
        let candidate = names[rng.gen_range(0..names.len())].clone();
        if !picked.contains(&candidate) {
            picked.push(candidate);
        }
    }
    picked.sort();
    picked
}

const STORM_KINDS: [QueryKind; 4] = [
    QueryKind::Lineage,
    QueryKind::BaseTuples,
    QueryKind::ParticipatingNodes,
    QueryKind::DerivationCount,
];

/// One flash-crowd wave: submit `count` sessions against the current result
/// relations, then drain them all off the shared network. Returns the number
/// of sessions run and their measured latencies.
fn run_storm(
    nt: &mut NetTrails,
    result_relations: &[&str],
    count: usize,
    qrng: &mut StdRng,
) -> (usize, Vec<f64>) {
    // Snapshot the queryable state, sorted by display form so the pick order
    // never depends on interner ids.
    let mut candidates = Vec::new();
    for rel in result_relations {
        for (addr, tuple) in nt.relation(rel) {
            candidates.push((format!("{} {}", addr.as_str(), tuple), tuple));
        }
    }
    candidates.sort_by(|a, b| a.0.cmp(&b.0));
    let mut queriers: Vec<String> = nt.nodes().iter().map(|a| a.as_str().to_string()).collect();
    queriers.sort();
    if candidates.is_empty() || queriers.is_empty() {
        return (0, Vec::new());
    }
    let mut handles = Vec::with_capacity(count);
    for q in 0..count {
        let (_, target) = &candidates[qrng.gen_range(0..candidates.len())];
        let querier = &queriers[qrng.gen_range(0..queriers.len())];
        let target = target.clone();
        // Alternate fan-out and sequential traversals: the crowd is a mix,
        // and the spread is what makes p99 vs p50 informative.
        let traversal = if q % 2 == 0 {
            TraversalOrder::BreadthFirst
        } else {
            TraversalOrder::DepthFirst
        };
        let handle = nt
            .query(&target)
            .from_node(querier)
            .kind(STORM_KINDS[q % STORM_KINDS.len()])
            .traversal(traversal)
            .submit();
        handles.push(handle);
    }
    let mut latencies = Vec::with_capacity(handles.len());
    for handle in handles {
        let (_, stats) = nt.wait_query(handle);
        latencies.push(stats.latency_ms);
    }
    (latencies.len(), latencies)
}
