//! Anchored scenario protocols.
//!
//! The bundled protocols (`protocols::{mincost, pathvector, dsr}`) compute
//! all-pairs state — O(n^2) tuples, fine on 16-node ladders, infeasible at
//! 10^4 nodes (and unrealistic: real networks route toward advertised
//! prefixes, not toward every host). The scenario programs keep each
//! protocol's structure — path vectors with loop checks, min-cost
//! aggregation, DSR-style source routes — but route only toward a seeded set
//! of `anchor` destinations and cap the path length, so state scales with
//! `nodes * anchors * degree^hops`, not `nodes^2`.

use nt_runtime::{Tuple, Value};

/// Relations a query storm can target under the anchored path-vector
/// program.
pub const PATHVECTOR_RESULTS: &[&str] = &["bestRoute"];

/// Relations a query storm can target under the mixed program — one result
/// relation per concurrent protocol family.
pub const MIXED_RESULTS: &[&str] = &["bestRoute", "aBest", "anchorHops"];

/// Anchored path-vector: full paths with membership loop checks, best cost
/// per (source, anchor). `max_hops` caps the number of links in a path.
pub fn anchored_pathvector(max_hops: usize) -> String {
    // A path of h links lists h+1 nodes; extension is allowed while the
    // current path lists at most max_hops nodes.
    let node_bound = max_hops + 1;
    format!(
        "\
materialize(link, infinity, infinity, keys(1,2)).
materialize(anchor, infinity, infinity, keys(1,2)).
materialize(route, infinity, infinity, keys(1,2,3,4)).
materialize(bestRoute, infinity, infinity, keys(1,2)).

sc1 route(@S,D,P,C) :- link(@S,D,C), anchor(@D,D), P := f_initlist2(S, D).
sc2 route(@S,D,P,C) :- link(@S,Z,C1), route(@Z,D,P2,C2), f_member(P2, S) == 0, L := f_size(P2), L < {node_bound}, C := C1 + C2, P := f_prepend(S, P2).
sc3 bestRoute(@S,D,min<C>) :- route(@S,D,P,C).
"
    )
}

/// Three protocol families concurrently on one simnet, sharing the `link`
/// and `anchor` base relations: the anchored path-vector above, a
/// min-cost/distance-vector family (`acost`/`aBest`, hop counter instead of
/// a path), and a DSR-style source-route family (`sroute`/`anchorHops`).
pub fn mixed_protocols(max_hops: usize) -> String {
    let node_bound = max_hops + 1;
    let pv = anchored_pathvector(max_hops);
    format!(
        "\
{pv}
materialize(acost, infinity, infinity, keys(1,2,3,4)).
materialize(aBest, infinity, infinity, keys(1,2)).
materialize(sroute, infinity, infinity, keys(1,2,3)).
materialize(anchorHops, infinity, infinity, keys(1,2)).

mx1 acost(@S,D,C,H) :- link(@S,D,C), anchor(@D,D), H := 1.
mx2 acost(@S,D,C,H) :- link(@S,Z,C1), acost(@Z,D,C2,H2), H2 < {max_hops}, C := C1 + C2, H := H2 + 1.
mx3 aBest(@S,D,min<C>) :- acost(@S,D,C,H).

dx1 sroute(@S,D,P) :- link(@S,D,C), anchor(@D,D), P := f_initlist2(S, D).
dx2 sroute(@S,D,P) :- link(@S,Z,C), sroute(@Z,D,P2), f_member(P2, S) == 0, L := f_size(P2), L < {node_bound}, P := f_prepend(S, P2).
dx3 anchorHops(@S,D,min<L>) :- sroute(@S,D,P), L := f_size(P).
"
    )
}

/// The base fact advertising `a` as an anchor destination (seeded at `a`).
pub fn anchor_tuple(a: &str) -> Tuple {
    Tuple::new("anchor", vec![Value::addr(a), Value::addr(a)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchored_pathvector_compiles_and_localizes() {
        let compiled = nt_runtime::CompiledProgram::from_source(&anchored_pathvector(3)).unwrap();
        assert!(compiled.rule("sc2").is_some());
    }

    #[test]
    fn mixed_program_compiles_with_all_three_families() {
        let compiled = nt_runtime::CompiledProgram::from_source(&mixed_protocols(3)).unwrap();
        for rule in ["sc1", "mx2", "dx3"] {
            assert!(compiled.rule(rule).is_some(), "missing {rule}");
        }
        for rel in ["bestRoute", "aBest", "anchorHops"] {
            assert!(compiled.catalog.schema(rel).is_some(), "missing {rel}");
        }
    }
}
