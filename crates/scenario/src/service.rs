//! The query-service workload: flash-crowd waves of concurrent provenance
//! sessions from many tenants against a churning `internet_as` topology.
//!
//! Each scenario converges an anchored pathvector program, then replays a
//! sequence of waves: before every wave after the first, seeded link churn
//! reshapes the topology (previously failed links recover, fresh ones
//! fail); each wave then offers a burst of sessions round-robin across the
//! tenants through [`qsvc::QueryService`] and drives the service until the
//! wave drains. Every wave's offering is equal across tenants, so the
//! completed-session fairness ratio is a meaningful gate (≤ 1.5).
//!
//! Every row runs **twice**: once with cross-session frame merging
//! ([`NetTrailsConfig::with_merged_query_frames`]) and once with per-session
//! sealing, over the identical request sequence. The per-session digest —
//! tenants, expiry flags, every [`provenance::QueryStats`] field including
//! measured latency — must be bit-identical across the two modes
//! ([`ServiceScenarioOutcome::merged_matches_split`]): merging collapses
//! frames on the wire without perturbing any session's execution. The only
//! sanctioned difference is the frame count itself, which the bench gates
//! as sublinear in session count.

use crate::programs::{self, PATHVECTOR_RESULTS};
use crate::spec::TopologyFamily;
use crate::Fnv;
use nettrails::{NetTrails, NetTrailsConfig};
use nt_runtime::Tuple;
use provenance::{QueryKind, TraversalOrder};
use qsvc::{QueryService, ServiceConfig, TenantStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simnet::{Link, TopologyEvent};
use std::time::Instant;

/// One query-service scenario row: an `internet_as` topology, a tenant
/// population, and a wave schedule of offered sessions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceScenarioSpec {
    /// Seed for the topology, the request sequence and the churn.
    pub seed: u64,
    /// `internet_as` node count.
    pub nodes: usize,
    /// `internet_as` preferential-attachment degree.
    pub degree: usize,
    /// Anchor destinations the pathvector program routes toward.
    pub anchors: usize,
    /// Hop bound of the routing program.
    pub max_hops: usize,
    /// Tenant population; every wave offers sessions round-robin across it.
    pub tenants: usize,
    /// Sessions offered per wave. Link churn precedes every wave after the
    /// first.
    pub waves: Vec<usize>,
    /// Links failed before each churned wave.
    pub churn_per_wave: usize,
    /// Global in-flight session budget ([`ServiceConfig::max_in_flight`]).
    pub max_in_flight: usize,
    /// Per-tenant queue cap ([`ServiceConfig::queue_cap`]); a wave offering
    /// more than this per tenant is deterministically `Overloaded`.
    pub queue_cap: usize,
    /// Deadline given to every `deadline_every`-th session (simulated ms).
    pub deadline_ms: f64,
    /// Session stride between deadlines (`0` disables deadlines).
    pub deadline_every: usize,
    /// Also rerun the merged mode with 2 fixpoint workers and require a
    /// bit-identical digest (worker-count independence).
    pub verify_workers: bool,
    /// Member of the per-PR CI slice (false: nightly full sweep only).
    pub slice: bool,
}

impl ServiceScenarioSpec {
    /// Row identifier: family, node count and total sessions offered.
    pub fn name(&self) -> String {
        format!("svc_internet_as_{}_s{}", self.nodes, self.offered())
    }

    /// Total sessions offered across all waves.
    pub fn offered(&self) -> usize {
        self.waves.iter().sum()
    }
}

/// What one query-service scenario produced. Wall-clock fields vary by
/// machine; everything else — [`ServiceScenarioOutcome::service_digest`] in
/// particular — is a pure function of the spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceScenarioOutcome {
    /// Row identifier (see [`ServiceScenarioSpec::name`]).
    pub name: String,
    /// Nodes in the generated topology.
    pub nodes: usize,
    /// Directed links at generation time.
    pub links: usize,
    /// Tenant population.
    pub tenants: usize,
    /// Sessions offered (accepted + rejected).
    pub offered: usize,
    /// Sessions rejected `Overloaded` at admission.
    pub rejected: usize,
    /// Sessions that completed with a result.
    pub completed: usize,
    /// Sessions cancelled by deadline (queued or in flight).
    pub expired: usize,
    /// Link churn events applied between waves.
    pub churn_events: usize,
    /// Completed sessions' measured latencies, sorted ascending (simulated
    /// clock; identical in both sealing modes).
    pub latencies_ms: Vec<f64>,
    /// Query frames shipped under merged sealing.
    pub frames_merged: u64,
    /// Query frames shipped under per-session sealing.
    pub frames_split: u64,
    /// Distinct frame destinations (identical in both modes).
    pub dests: usize,
    /// `frames_merged / dests`.
    pub frames_per_dest_merged: f64,
    /// `frames_split / dests`.
    pub frames_per_dest_split: f64,
    /// Dictionary bytes charged across all sessions, merged sealing.
    pub dict_bytes_merged: u64,
    /// Dictionary bytes charged across all sessions, per-session sealing
    /// (equal to merged: first-use dictionary state is per destination,
    /// shared across sessions, in both modes).
    pub dict_bytes_split: u64,
    /// Completed sessions per tenant, in tenant-name order.
    pub per_tenant_completed: Vec<(String, u64)>,
    /// Max/min completed sessions across tenants.
    pub fairness_ratio: f64,
    /// Per-session digests (tenant, expiry, every `QueryStats` field) are
    /// bit-identical between merged and per-session sealing.
    pub merged_matches_split: bool,
    /// A second merged run reproduced the digest bit-for-bit.
    pub matches_rerun: bool,
    /// The digest is identical with 2 fixpoint workers (`true` when the
    /// spec did not request the check).
    pub matches_workers: bool,
    /// Digest of the merged run: completions, tenant accounting, frame and
    /// dictionary counters.
    pub service_digest: u64,
    /// Simulated span of the merged run.
    pub sim_ms: f64,
    /// Wall-clock time of initial convergence (machine-dependent).
    pub converge_wall_ms: f64,
    /// Wall-clock time of the merged run's waves (machine-dependent).
    pub run_wall_ms: f64,
}

impl ServiceScenarioOutcome {
    /// Median completed-session latency (simulated milliseconds).
    pub fn p50_ms(&self) -> f64 {
        crate::percentile(&self.latencies_ms, 50.0)
    }

    /// 99th-percentile completed-session latency (simulated milliseconds).
    pub fn p99_ms(&self) -> f64 {
        crate::percentile(&self.latencies_ms, 99.0)
    }

    /// Completed sessions per wall-clock second of the merged run.
    pub fn sessions_per_sec(&self) -> f64 {
        self.completed as f64 / (self.run_wall_ms / 1000.0).max(1e-9)
    }
}

const SERVICE_KINDS: [QueryKind; 4] = [
    QueryKind::Lineage,
    QueryKind::BaseTuples,
    QueryKind::ParticipatingNodes,
    QueryKind::DerivationCount,
];

/// Everything one sealing-mode run measures.
struct ModeRun {
    digest: u64,
    latencies_ms: Vec<f64>,
    offered: usize,
    rejected: u64,
    completed: usize,
    expired: usize,
    churn_events: usize,
    per_tenant: Vec<(String, TenantStats)>,
    fairness: f64,
    frames: u64,
    dests: usize,
    dict_bytes: u64,
    links: usize,
    sim_ms: f64,
    converge_wall_ms: f64,
    run_wall_ms: f64,
}

/// Run one scenario in both sealing modes (plus determinism reruns) and
/// assemble the comparison.
pub fn run_service_scenario(spec: &ServiceScenarioSpec) -> ServiceScenarioOutcome {
    let merged = run_mode(spec, true, 1);
    let split = run_mode(spec, false, 1);
    let rerun = run_mode(spec, true, 1);
    let matches_workers = if spec.verify_workers {
        run_mode(spec, true, 2).digest == merged.digest
    } else {
        true
    };
    let mut latencies_ms = merged.latencies_ms.clone();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    ServiceScenarioOutcome {
        name: spec.name(),
        nodes: spec.nodes,
        links: merged.links,
        tenants: spec.tenants,
        offered: merged.offered,
        rejected: merged.rejected as usize,
        completed: merged.completed,
        expired: merged.expired,
        churn_events: merged.churn_events,
        latencies_ms,
        frames_merged: merged.frames,
        frames_split: split.frames,
        dests: merged.dests,
        frames_per_dest_merged: merged.frames as f64 / merged.dests.max(1) as f64,
        frames_per_dest_split: split.frames as f64 / split.dests.max(1) as f64,
        dict_bytes_merged: merged.dict_bytes,
        dict_bytes_split: split.dict_bytes,
        per_tenant_completed: merged
            .per_tenant
            .iter()
            .map(|(name, stats)| (name.clone(), stats.completed))
            .collect(),
        fairness_ratio: merged.fairness,
        merged_matches_split: merged.digest == split.digest,
        matches_rerun: merged.digest == rerun.digest,
        matches_workers,
        service_digest: merged.digest,
        sim_ms: merged.sim_ms,
        converge_wall_ms: merged.converge_wall_ms,
        run_wall_ms: merged.run_wall_ms,
    }
}

/// One full run of the wave schedule in one sealing mode.
fn run_mode(spec: &ServiceScenarioSpec, merge_frames: bool, workers: usize) -> ModeRun {
    let topology = TopologyFamily::InternetAs {
        n: spec.nodes,
        m: spec.degree,
    }
    .build(spec.seed);
    let links = topology.link_count();
    let program = programs::anchored_pathvector(spec.max_hops);
    let config = NetTrailsConfig {
        merge_query_frames: merge_frames,
        fixpoint_workers: workers,
        ..NetTrailsConfig::default()
    };
    let mut nt = NetTrails::new(&program, topology, config).expect("service program compiles");

    let converge_start = Instant::now();
    nt.seed_links_from_topology();
    for anchor in pick_anchors(spec, &nt) {
        let tuple = programs::anchor_tuple(&anchor);
        nt.insert_fact(&anchor, tuple);
    }
    nt.run_to_fixpoint();
    let converge_wall_ms = converge_start.elapsed().as_secs_f64() * 1000.0;

    let run_start = Instant::now();
    let t0 = nt.now();
    let mut svc = QueryService::new(ServiceConfig {
        max_in_flight: spec.max_in_flight,
        queue_cap: spec.queue_cap,
        quantum: 1,
    });
    let mut qrng = StdRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut crng = StdRng::seed_from_u64(spec.seed ^ 0x3c6e_f372_fe94_f82b);
    let mut rejected = 0u64;
    let mut churn_events = 0usize;
    let mut completions = Vec::new();
    let mut downed: Vec<Link> = Vec::new();
    let mut session = 0usize;
    for (wave, &count) in spec.waves.iter().enumerate() {
        if wave > 0 {
            // Failed links recover, fresh ones fail: the topology churns but
            // stays near its generated shape.
            for link in downed.drain(..) {
                nt.apply_topology_event(&TopologyEvent::LinkUp(link));
                churn_events += 1;
            }
            let pairs: Vec<Link> = nt
                .network()
                .topology()
                .links()
                .filter(|l| l.from < l.to)
                .cloned()
                .collect();
            for _ in 0..spec.churn_per_wave {
                let link = pairs[crng.gen_range(0..pairs.len())].clone();
                nt.apply_topology_event(&TopologyEvent::LinkDown {
                    a: link.from.clone(),
                    b: link.to.clone(),
                });
                downed.push(link);
                churn_events += 1;
            }
        }
        // Snapshot the queryable state, sorted by display form so the pick
        // order never depends on interner ids.
        let mut candidates: Vec<(String, Tuple)> = Vec::new();
        for rel in PATHVECTOR_RESULTS {
            for (addr, tuple) in nt.relation(rel) {
                candidates.push((format!("{} {}", addr.as_str(), tuple), tuple));
            }
        }
        candidates.sort_by(|a, b| a.0.cmp(&b.0));
        let mut queriers: Vec<String> = nt.nodes().iter().map(|a| a.as_str().to_string()).collect();
        queriers.sort();
        assert!(
            !candidates.is_empty() && !queriers.is_empty(),
            "churn must not disconnect every route"
        );
        // Offer the wave round-robin across tenants: equal load, so the
        // fairness ratio is meaningful and overload rejects every tenant
        // equally.
        for i in 0..count {
            let tenant = format!("t{:02}", i % spec.tenants);
            let (_, target) = &candidates[qrng.gen_range(0..candidates.len())];
            let querier = &queriers[qrng.gen_range(0..queriers.len())];
            let traversal = if session.is_multiple_of(2) {
                TraversalOrder::BreadthFirst
            } else {
                TraversalOrder::DepthFirst
            };
            let mut builder = nt
                .service(&tenant)
                .query(target)
                .from_node(querier)
                .kind(SERVICE_KINDS[session % SERVICE_KINDS.len()])
                .traversal(traversal);
            if spec.deadline_every > 0 && session % spec.deadline_every == spec.deadline_every - 1 {
                builder = builder.deadline_ms(spec.deadline_ms);
            }
            session += 1;
            let request = builder.request();
            if svc.enqueue(&nt, request).is_err() {
                rejected += 1;
            }
        }
        svc.run(&mut nt);
        completions.extend(svc.take_completions());
    }
    let run_wall_ms = run_start.elapsed().as_secs_f64() * 1000.0;
    let sim_ms = (nt.now().as_secs_f64() - t0.as_secs_f64()) * 1000.0;

    let per_tenant = svc.tenant_stats();
    let traffic = nt.query_executor().traffic();
    let mut dests: Vec<&str> = traffic
        .by_link
        .keys()
        .map(|k| k.split("->").nth(1).expect("by_link keys are src->dst"))
        .collect();
    dests.sort_unstable();
    dests.dedup();
    let dict_bytes = per_tenant
        .iter()
        .map(|(_, stats)| stats.rollup.dict_bytes)
        .sum();

    // Digest: every completion (tenant, expiry, per-session stats) in
    // completion order, plus per-tenant accounting. Two measures are
    // deliberately kept out of the per-session digest: frame counts (the
    // one sanctioned difference between sealing modes) and per-session
    // `bytes`/`dict_bytes` (first-use dictionary *attribution* follows
    // frame order within a flush, so merging may shift a shared symbol's
    // charge between concurrent sessions — the run-wide totals, hashed
    // below, are mode-invariant). Everything else — messages, records,
    // visits, cache hits, measured latency — must be bit-identical across
    // merged, per-session and rerun digests.
    let mut h = Fnv::default();
    let mut latencies_ms = Vec::new();
    let mut completed = 0usize;
    let mut expired = 0usize;
    let mut total_bytes = 0u64;
    let mut total_dict = 0u64;
    for c in &completions {
        h.write(c.tenant.as_bytes());
        h.write_u64(c.ticket);
        h.write_u64(c.expired as u64);
        h.write_u64(c.stats.messages);
        h.write_u64(c.stats.records);
        h.write_u64(c.stats.vertices_visited);
        h.write_u64(c.stats.cache_hits);
        h.write_f64(c.stats.latency_ms);
        total_bytes += c.stats.bytes;
        total_dict += c.stats.dict_bytes;
        if c.expired {
            expired += 1;
        } else {
            completed += 1;
            latencies_ms.push(c.stats.latency_ms);
        }
    }
    h.write_u64(total_bytes);
    h.write_u64(total_dict);
    for (name, stats) in &per_tenant {
        h.write(name.as_bytes());
        for v in [
            stats.offered,
            stats.rejected,
            stats.admitted,
            stats.completed,
            stats.expired,
        ] {
            h.write_u64(v);
        }
    }
    h.write_u64(churn_events as u64);
    h.write_f64(sim_ms);

    ModeRun {
        digest: h.finish(),
        latencies_ms,
        offered: spec.offered(),
        rejected,
        completed,
        expired,
        churn_events,
        fairness: svc.fairness_ratio(),
        per_tenant,
        frames: traffic.messages,
        dests: dests.len(),
        dict_bytes,
        links,
        sim_ms,
        converge_wall_ms,
        run_wall_ms,
    }
}

/// Seeded anchor pick (same discipline as the trace driver: sorted
/// connected names, seeded choice).
fn pick_anchors(spec: &ServiceScenarioSpec, nt: &NetTrails) -> Vec<String> {
    let mut names: Vec<String> = nt
        .network()
        .topology()
        .nodes()
        .filter(|n| nt.network().topology().degree(n) > 0)
        .map(str::to_string)
        .collect();
    names.sort();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xbb67_ae85_84ca_a73b);
    let mut picked = Vec::new();
    while picked.len() < spec.anchors.min(names.len()) {
        let candidate = names[rng.gen_range(0..names.len())].clone();
        if !picked.contains(&candidate) {
            picked.push(candidate);
        }
    }
    picked.sort();
    picked
}

/// The query-service suite: the per-PR CI slice, extended by the nightly
/// full sweep.
pub fn service_suite(scale: crate::SuiteScale) -> Vec<ServiceScenarioSpec> {
    let base = ServiceScenarioSpec {
        seed: 0,
        nodes: 192,
        degree: 2,
        anchors: 4,
        max_hops: 4,
        tenants: 8,
        waves: Vec::new(),
        churn_per_wave: 6,
        max_in_flight: 64,
        queue_cap: 4096,
        deadline_ms: 3.0,
        deadline_every: 13,
        verify_workers: false,
        slice: true,
    };
    let mut specs = vec![
        // The small row: the sublinearity baseline, plus the (cheap)
        // worker-count independence check.
        ServiceScenarioSpec {
            seed: 10101,
            waves: vec![64, 64, 128],
            verify_workers: true,
            ..base.clone()
        },
        // The 10^3-session flash crowd: 1024 sessions offered in one wave
        // (128 per tenant), against a queue cap of 112 — every tenant is
        // equally Overloaded for its last 16, deterministically.
        ServiceScenarioSpec {
            seed: 10102,
            waves: vec![128, 128, 1024],
            max_in_flight: 256,
            queue_cap: 112,
            ..base.clone()
        },
    ];
    if scale == crate::SuiteScale::Full {
        specs.push(ServiceScenarioSpec {
            seed: 10201,
            nodes: 512,
            waves: vec![256, 256, 2048],
            max_in_flight: 512,
            queue_cap: 224,
            slice: false,
            ..base
        });
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ServiceScenarioSpec {
        ServiceScenarioSpec {
            seed: 77,
            nodes: 24,
            degree: 2,
            anchors: 2,
            max_hops: 3,
            tenants: 4,
            waves: vec![16, 24],
            churn_per_wave: 2,
            max_in_flight: 8,
            queue_cap: 4,
            deadline_ms: 2.0,
            deadline_every: 5,
            verify_workers: true,
            slice: true,
        }
    }

    #[test]
    fn service_scenarios_are_deterministic_and_mode_equivalent() {
        let outcome = run_service_scenario(&tiny_spec());
        assert!(outcome.merged_matches_split, "sealing modes must agree");
        assert!(outcome.matches_rerun, "reruns must agree");
        assert!(outcome.matches_workers, "worker counts must agree");
        assert_eq!(outcome.offered, 40);
        assert!(outcome.rejected > 0, "queue cap of 4 rejects a 6-deep wave");
        assert!(outcome.completed > 0);
        assert_eq!(
            outcome.completed + outcome.expired + outcome.rejected,
            outcome.offered
        );
        assert!(outcome.churn_events > 0);
        assert!(
            outcome.frames_merged < outcome.frames_split,
            "merging must collapse concurrent frames ({} vs {})",
            outcome.frames_merged,
            outcome.frames_split
        );
        assert_eq!(
            outcome.dict_bytes_merged, outcome.dict_bytes_split,
            "first-use dictionary state is shared per destination in both modes"
        );
        assert!(outcome.p99_ms() >= outcome.p50_ms());
        assert!(outcome.fairness_ratio.is_finite());
    }

    #[test]
    fn suite_slices_cover_the_flash_crowd_scales() {
        let slice = service_suite(crate::SuiteScale::Slice);
        assert_eq!(slice.len(), 2);
        assert!(slice.iter().all(|s| s.slice));
        assert!(slice.iter().all(|s| s.tenants >= 8));
        assert!(
            slice.iter().any(|s| s.offered() >= 1000),
            "the slice must include a 10^3-session row"
        );
        let full = service_suite(crate::SuiteScale::Full);
        assert!(full.len() > slice.len());
        assert!(full.iter().any(|s| s.offered() >= 2000));
        let mut names: Vec<String> = full.iter().map(|s| s.name()).collect();
        names.dedup();
        assert_eq!(names.len(), full.len(), "row names are unique");
    }
}
