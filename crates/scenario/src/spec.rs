//! Scenario specifications: which topology family, which workload, which
//! seed. A spec is the *entire* input of a scenario — everything else is
//! derived deterministically from it.

use serde::{Deserialize, Serialize};
use simnet::{MobilityModel, RandomWaypoint, Topology};

/// A seeded topology family of the suite. Parameters are plain integers so
/// specs are `Eq` and serialize exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyFamily {
    /// `k`-ary data-center fat-tree (`k` even): `5k^2/4 + k^3/4` nodes.
    FatTree {
        /// Switch radix.
        k: usize,
    },
    /// AS-level internet-like graph: preferential attachment with tiered
    /// link costs.
    InternetAs {
        /// Node count.
        n: usize,
        /// Links each newcomer attaches with.
        m: usize,
    },
    /// Watts–Strogatz small-world mesh.
    SmallWorld {
        /// Node count.
        n: usize,
        /// Lattice degree (even).
        k: usize,
        /// Rewiring probability in percent.
        beta_percent: u32,
    },
    /// Random-waypoint mobility mesh (the DSR environment); churn traces are
    /// sampled from the motion model.
    MobilityMesh {
        /// Node count.
        n: usize,
        /// Motion horizon in seconds (how far waypoints are precomputed).
        horizon_secs: u32,
    },
}

impl TopologyFamily {
    /// Short family name used in report rows and CI gates.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyFamily::FatTree { .. } => "fat_tree",
            TopologyFamily::InternetAs { .. } => "internet_as",
            TopologyFamily::SmallWorld { .. } => "small_world",
            TopologyFamily::MobilityMesh { .. } => "mesh",
        }
    }

    /// Build the topology for `seed`. For the mobility mesh this is the radio
    /// link set at t=0 of the seeded motion model.
    pub fn build(&self, seed: u64) -> Topology {
        match *self {
            TopologyFamily::FatTree { k } => Topology::fat_tree(k, seed),
            TopologyFamily::InternetAs { n, m } => Topology::internet_as(n, m, seed),
            TopologyFamily::SmallWorld { n, k, beta_percent } => {
                Topology::small_world(n, k, beta_percent, seed)
            }
            TopologyFamily::MobilityMesh { n, horizon_secs } => {
                RandomWaypoint::mesh(n, f64::from(horizon_secs), seed).topology_at(0.0)
            }
        }
    }

    /// The motion model behind a mobility mesh (`None` for static families).
    pub fn mobility_model(&self, seed: u64) -> Option<RandomWaypoint> {
        match *self {
            TopologyFamily::MobilityMesh { n, horizon_secs } => {
                Some(RandomWaypoint::mesh(n, f64::from(horizon_secs), seed))
            }
            _ => None,
        }
    }
}

/// Which trace the workload driver replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Sustained link churn (downs, recoveries, cost changes) with periodic
    /// latency probes.
    Churn,
    /// Flash-crowd query storms against a lightly-churning network.
    Storm,
    /// Concurrent protocols (path-vector + min-cost + DSR-style source
    /// routes on one simnet) under interleaved churn and storms.
    Mixed,
}

impl WorkloadKind {
    /// Short workload name used in report rows and CI gates.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Churn => "churn",
            WorkloadKind::Storm => "storm",
            WorkloadKind::Mixed => "mixed",
        }
    }
}

/// A fully-specified scenario. The replay driver, the trace and the topology
/// are all pure functions of this value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Topology family and its size parameters.
    pub family: TopologyFamily,
    /// Workload trace kind.
    pub workload: WorkloadKind,
    /// The seed everything derives from.
    pub seed: u64,
    /// How many anchor destinations the scenario protocols route toward
    /// (the analogue of advertised prefixes — routing all-pairs at 10^4
    /// nodes would be quadratic in state, which no real protocol does).
    pub anchors: usize,
    /// Hop bound on scenario routes (path length cap).
    pub max_hops: usize,
    /// Link-churn steps in the trace.
    pub churn_steps: usize,
    /// Queries per flash-crowd storm wave.
    pub storm_queries: usize,
    /// Member of the representative per-PR CI slice (nightly runs the rest).
    pub slice: bool,
}

impl ScenarioSpec {
    /// Stable row identifier: family, size, workload.
    pub fn name(&self) -> String {
        let size = match self.family {
            TopologyFamily::FatTree { k } => format!("k{k}"),
            TopologyFamily::InternetAs { n, .. }
            | TopologyFamily::SmallWorld { n, .. }
            | TopologyFamily::MobilityMesh { n, .. } => format!("n{n}"),
        };
        format!("{}_{}_{}", self.family.name(), size, self.workload.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let spec = ScenarioSpec {
            family: TopologyFamily::FatTree { k: 16 },
            workload: WorkloadKind::Churn,
            seed: 1,
            anchors: 4,
            max_hops: 3,
            churn_steps: 10,
            storm_queries: 8,
            slice: true,
        };
        assert_eq!(spec.name(), "fat_tree_k16_churn");
        assert_eq!(spec.family.build(1), spec.family.build(1));
    }
}
