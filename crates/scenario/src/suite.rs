//! The benchmark suite: which scenarios run per-PR (the representative
//! slice) and which the nightly full sweep adds.
//!
//! The slice covers every topology family and every workload kind at
//! 10^3-node scale in seconds; the full sweep re-runs the slice (so nightly
//! digests are comparable to the committed ones) and adds the 10^4-node
//! rows.

use crate::driver::topology_digest;
use crate::spec::{ScenarioSpec, TopologyFamily, WorkloadKind};
use crate::trace::WorkloadTrace;
use crate::ScenarioOutcome;

/// How much of the suite to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// The representative per-PR slice: every family and workload at 10^3
    /// nodes, seconds of wall clock.
    Slice,
    /// The nightly sweep: the slice plus the 10^4-node rows.
    Full,
}

fn spec(
    family: TopologyFamily,
    workload: WorkloadKind,
    seed: u64,
    anchors: usize,
    max_hops: usize,
    slice: bool,
) -> ScenarioSpec {
    ScenarioSpec {
        family,
        workload,
        seed,
        anchors,
        max_hops,
        churn_steps: 24,
        storm_queries: 32,
        slice,
    }
}

/// The scenario specs for `scale`, in a fixed order (report rows and CI
/// gates rely on it).
pub fn suite(scale: SuiteScale) -> Vec<ScenarioSpec> {
    use TopologyFamily::{FatTree, InternetAs, MobilityMesh, SmallWorld};
    use WorkloadKind::{Churn, Mixed, Storm};
    let mut specs = vec![
        // 1344 nodes: 64 core + 256 pod switches + 1024 hosts. Three hops is
        // the sweet spot: a switch anchor at four hops reaches most of the
        // tree and route state explodes.
        spec(FatTree { k: 16 }, Churn, 9101, 8, 3, true),
        spec(FatTree { k: 16 }, Storm, 9102, 8, 3, true),
        spec(InternetAs { n: 1200, m: 2 }, Churn, 9103, 8, 3, true),
        spec(InternetAs { n: 1200, m: 2 }, Storm, 9104, 8, 3, true),
        spec(
            SmallWorld {
                n: 1024,
                k: 6,
                beta_percent: 10,
            },
            Churn,
            9105,
            8,
            4,
            true,
        ),
        spec(
            SmallWorld {
                n: 1024,
                k: 6,
                beta_percent: 10,
            },
            Storm,
            9106,
            8,
            4,
            true,
        ),
        spec(InternetAs { n: 512, m: 2 }, Mixed, 9107, 6, 3, true),
        // Mobility churn is sampled per simulated second, so churn_steps is
        // the sample horizon; each sample can flip many radio links.
        ScenarioSpec {
            churn_steps: 12,
            ..spec(
                MobilityMesh {
                    n: 384,
                    horizon_secs: 40,
                },
                Mixed,
                9108,
                6,
                3,
                true,
            )
        },
    ];
    if scale == SuiteScale::Full {
        specs.extend([
            // 10496 nodes: 256 core + 2048 pod switches + 8192 hosts.
            spec(FatTree { k: 32 }, Churn, 9201, 8, 3, false),
            spec(FatTree { k: 32 }, Storm, 9202, 8, 3, false),
            spec(InternetAs { n: 10000, m: 2 }, Churn, 9203, 8, 3, false),
            spec(InternetAs { n: 10000, m: 2 }, Storm, 9204, 8, 3, false),
            spec(
                SmallWorld {
                    n: 10240,
                    k: 6,
                    beta_percent: 10,
                },
                Churn,
                9205,
                8,
                4,
                false,
            ),
            spec(
                SmallWorld {
                    n: 10240,
                    k: 6,
                    beta_percent: 10,
                },
                Storm,
                9206,
                8,
                4,
                false,
            ),
            spec(InternetAs { n: 2048, m: 2 }, Mixed, 9207, 6, 3, false),
            ScenarioSpec {
                churn_steps: 12,
                ..spec(
                    MobilityMesh {
                        n: 1024,
                        horizon_secs: 40,
                    },
                    Mixed,
                    9208,
                    6,
                    3,
                    false,
                )
            },
        ]);
    }
    specs
}

/// Re-derive the topology and trace from the spec's seed and check the
/// outcome's digests against them — the `matches_seed` gate of the report.
pub fn verify_seed(spec: &ScenarioSpec, outcome: &ScenarioOutcome) -> bool {
    let topology = spec.family.build(spec.seed);
    if topology_digest(&topology) != outcome.topo_digest {
        return false;
    }
    WorkloadTrace::generate(spec, &topology).digest() == outcome.trace_digest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_covers_families_and_workloads() {
        let slice = suite(SuiteScale::Slice);
        assert!(slice.iter().all(|s| s.slice));
        let families: std::collections::BTreeSet<_> =
            slice.iter().map(|s| s.family.name()).collect();
        let workloads: std::collections::BTreeSet<_> =
            slice.iter().map(|s| s.workload.name()).collect();
        assert_eq!(families.len(), 4, "every topology family in the slice");
        assert_eq!(workloads.len(), 3, "every workload kind in the slice");
        // The ISSUE's scale floor: the slice exercises >= 10^3-node rows.
        assert!(slice
            .iter()
            .filter(|s| !matches!(
                s.family,
                TopologyFamily::MobilityMesh { .. } | TopologyFamily::InternetAs { n: 512, .. }
            ))
            .all(|s| s.family.build(s.seed).node_count() >= 1000));
    }

    #[test]
    fn full_extends_the_slice_with_non_slice_rows() {
        let slice = suite(SuiteScale::Slice);
        let full = suite(SuiteScale::Full);
        assert_eq!(&full[..slice.len()], &slice[..]);
        assert!(full[slice.len()..].iter().all(|s| !s.slice));
        // Nightly reaches 10^4 nodes.
        assert!(full
            .iter()
            .any(|s| matches!(s.family, TopologyFamily::FatTree { k: 32 })));
    }

    #[test]
    fn suite_names_are_unique() {
        let full = suite(SuiteScale::Full);
        let names: std::collections::BTreeSet<_> = full.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), full.len());
    }
}
