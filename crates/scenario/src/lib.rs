//! # scenario — the internet-scale scenario suite
//!
//! The paper evaluates NetTrails on realistic distributed settings: AS-level
//! topologies derived from RouteViews, mobile DSR networks, multiple
//! declarative protocols running concurrently. This crate is the reproduction
//! counterpart: seeded topology families at 10^3–10^4 nodes
//! ([`TopologyFamily`]), deterministic trace schedules of link churn and
//! flash-crowd query storms ([`WorkloadTrace`]), and a replay driver
//! ([`run_scenario`]) that executes a trace against a full [`nettrails`]
//! platform and reports throughput plus p50/p99 query latency *measured* off
//! the simulated clock.
//!
//! Everything downstream of a [`ScenarioSpec`] is a pure function of its
//! `u64` seed: the topology, the trace, the replayed engine state and the
//! replay digest. `scripts/check_bench_schema.py` gates exactly that —
//! `matches_seed` must hold for every row of the `scenario_suite` section of
//! `BENCH_results.json`, and the committed digests must match a fresh run.

pub mod driver;
pub mod programs;
pub mod service;
pub mod spec;
pub mod suite;
pub mod trace;

pub use driver::{run_scenario, run_scenario_with_workers, ScenarioOutcome};
pub use service::{
    run_service_scenario, service_suite, ServiceScenarioOutcome, ServiceScenarioSpec,
};
pub use spec::{ScenarioSpec, TopologyFamily, WorkloadKind};
pub use suite::{suite, verify_seed, SuiteScale};
pub use trace::{TraceAction, TraceStep, WorkloadTrace};

/// Nearest-rank percentile over an ascending-sorted slice (`p` in `0..=100`).
/// Returns 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// FNV-1a, the digest primitive shared by traces and replay outcomes. The
/// inputs are simulated-clock quantities and sorted tuple dumps, never wall
/// clock, so digests are machine-independent.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    /// Fold raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Fold an `f64`'s bit pattern into the digest.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn fnv_depends_on_input() {
        let mut a = Fnv::default();
        a.write(b"hello");
        let mut b = Fnv::default();
        b.write(b"hellp");
        assert_ne!(a.finish(), b.finish());
    }
}
