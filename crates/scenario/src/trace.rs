//! Deterministic trace schedules.
//!
//! A trace is a list of timestamped steps — link churn events and
//! flash-crowd query storms — generated as a pure function of a
//! [`ScenarioSpec`] (static families draw churn from the seeded RNG; the
//! mobility mesh samples its motion model). The replay driver advances the
//! simulated clock to each step's timestamp before executing it, so measured
//! latencies and the trace schedule share one clock.

use crate::spec::{ScenarioSpec, TopologyFamily, WorkloadKind};
use crate::Fnv;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simnet::{Link, Topology, TopologyEvent};

/// One scheduled action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceAction {
    /// A topology change (both directions of a link).
    Churn(TopologyEvent),
    /// A flash crowd: this many concurrent query sessions submitted at one
    /// instant.
    QueryStorm {
        /// Sessions submitted together.
        queries: usize,
    },
}

/// A timestamped trace step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Offset from replay start, in simulated milliseconds.
    pub at_ms: u64,
    /// What happens.
    pub action: TraceAction,
}

/// A full trace schedule.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Steps in nondecreasing `at_ms` order.
    pub steps: Vec<TraceStep>,
}

/// Queries per periodic latency probe (so churn-only traces still measure
/// p50/p99).
const PROBE_QUERIES: usize = 4;

impl WorkloadTrace {
    /// Generate the trace for `spec` against its topology. `topology` must be
    /// `spec.family.build(spec.seed)` — passed in so the driver builds it
    /// once.
    pub fn generate(spec: &ScenarioSpec, topology: &Topology) -> WorkloadTrace {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
        let churn = match spec.family {
            TopologyFamily::MobilityMesh { .. } => Self::mobility_churn(spec),
            _ => Self::static_churn(spec, topology, &mut rng),
        };
        let mut steps = Vec::new();
        match spec.workload {
            WorkloadKind::Churn => {
                // Sustained churn with periodic latency probes: four probes
                // spread across the schedule plus one up front, however many
                // churn events the trace carries (a mobility mesh can emit
                // thousands per run).
                Self::interleave(&mut steps, churn, PROBE_QUERIES);
            }
            WorkloadKind::Storm => {
                // Flash crowds in three waves over a lightly-churning
                // network: a couple of churn events land between waves.
                let light: Vec<_> = churn.into_iter().take(4).collect();
                let mut wave_at = 0;
                let mut light_iter = light.into_iter();
                for wave in 0..3 {
                    steps.push(TraceStep {
                        at_ms: wave_at,
                        action: TraceAction::QueryStorm {
                            queries: spec.storm_queries,
                        },
                    });
                    if wave < 2 {
                        if let Some((_, event)) = light_iter.next() {
                            steps.push(TraceStep {
                                at_ms: wave_at + 100,
                                action: TraceAction::Churn(event),
                            });
                        }
                    }
                    wave_at += 250;
                }
            }
            WorkloadKind::Mixed => {
                // Concurrent protocols under interleaved churn and full
                // storms at the same four points.
                Self::interleave(&mut steps, churn, spec.storm_queries.max(PROBE_QUERIES));
            }
        }
        WorkloadTrace { steps }
    }

    /// Lay out churn events with one storm of `storm_size` up front and one
    /// after each quarter of the events — the storm *schedule* is fixed, so
    /// query volume never scales with churn volume.
    fn interleave(steps: &mut Vec<TraceStep>, churn: Vec<(u64, TopologyEvent)>, storm_size: usize) {
        steps.push(TraceStep {
            at_ms: 0,
            action: TraceAction::QueryStorm {
                queries: storm_size,
            },
        });
        let stride = churn.len().div_ceil(4).max(1);
        let total = churn.len();
        for (i, (at_ms, event)) in churn.into_iter().enumerate() {
            steps.push(TraceStep {
                at_ms,
                action: TraceAction::Churn(event),
            });
            if (i + 1) % stride == 0 || i + 1 == total {
                steps.push(TraceStep {
                    at_ms,
                    action: TraceAction::QueryStorm {
                        queries: storm_size,
                    },
                });
            }
        }
    }

    /// Churn for static families: link downs, recoveries of previously
    /// downed links, and cost changes, 40 simulated ms apart.
    fn static_churn(
        spec: &ScenarioSpec,
        topology: &Topology,
        rng: &mut StdRng,
    ) -> Vec<(u64, TopologyEvent)> {
        let pairs: Vec<&Link> = topology.links().filter(|l| l.from < l.to).collect();
        let mut events = Vec::new();
        let mut downed: Vec<Link> = Vec::new();
        for i in 0..spec.churn_steps {
            let at_ms = 40 * (i as u64 + 1);
            let event = match i % 3 {
                // A link fails...
                0 => {
                    let l = pairs[rng.gen_range(0..pairs.len())];
                    downed.push(l.clone());
                    TopologyEvent::LinkDown {
                        a: l.from.clone(),
                        b: l.to.clone(),
                    }
                }
                // ... and the oldest failed link recovers (keeping the
                // network near its generated shape), possibly at a new cost.
                1 if !downed.is_empty() => {
                    let mut l = downed.remove(0);
                    l.cost = rng.gen_range(1..=5);
                    TopologyEvent::LinkUp(l)
                }
                _ => {
                    let l = pairs[rng.gen_range(0..pairs.len())];
                    TopologyEvent::CostChange {
                        a: l.from.clone(),
                        b: l.to.clone(),
                        cost: rng.gen_range(1..=5),
                    }
                }
            };
            events.push((at_ms, event));
        }
        events
    }

    /// Churn for the mobility mesh: diff the motion model's radio link set
    /// at 1-second samples — real movement-driven churn, still a pure
    /// function of the seed.
    fn mobility_churn(spec: &ScenarioSpec) -> Vec<(u64, TopologyEvent)> {
        let model = spec
            .family
            .mobility_model(spec.seed)
            .expect("mobility churn needs a mesh family");
        let mut events = Vec::new();
        let samples = spec.churn_steps.max(1);
        for i in 1..=samples {
            let (t0, t1) = ((i - 1) as f64, i as f64);
            let at_ms = 1000 * i as u64;
            let (up, down) = model.link_changes(t0, t1);
            for (a, b) in down {
                events.push((at_ms, TopologyEvent::LinkDown { a, b }));
            }
            for (a, b) in up {
                events.push((at_ms, TopologyEvent::LinkUp(Link::new(a, b, 1))));
            }
        }
        events
    }

    /// Total churn events in the trace.
    pub fn churn_events(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.action, TraceAction::Churn(_)))
            .count()
    }

    /// Total queries across all storms.
    pub fn queries(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s.action {
                TraceAction::QueryStorm { queries } => queries,
                _ => 0,
            })
            .sum()
    }

    /// Simulated span of the schedule in milliseconds.
    pub fn span_ms(&self) -> u64 {
        self.steps.last().map(|s| s.at_ms).unwrap_or(0)
    }

    /// Machine-independent digest of the schedule.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::default();
        for step in &self.steps {
            h.write_u64(step.at_ms);
            h.write(format!("{:?}", step.action).as_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TopologyFamily, WorkloadKind};

    fn spec(workload: WorkloadKind) -> ScenarioSpec {
        ScenarioSpec {
            family: TopologyFamily::SmallWorld {
                n: 40,
                k: 4,
                beta_percent: 10,
            },
            workload,
            seed: 5,
            anchors: 3,
            max_hops: 3,
            churn_steps: 12,
            storm_queries: 8,
            slice: true,
        }
    }

    #[test]
    fn traces_are_seed_deterministic_and_timestamped() {
        for workload in [
            WorkloadKind::Churn,
            WorkloadKind::Storm,
            WorkloadKind::Mixed,
        ] {
            let s = spec(workload);
            let topo = s.family.build(s.seed);
            let a = WorkloadTrace::generate(&s, &topo);
            let b = WorkloadTrace::generate(&s, &topo);
            assert_eq!(a, b);
            assert_eq!(a.digest(), b.digest());
            assert!(a.queries() >= 1, "every trace measures latency");
            assert!(a.steps.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        }
    }

    #[test]
    fn churn_traces_churn_and_storm_traces_storm() {
        let s = spec(WorkloadKind::Churn);
        let topo = s.family.build(s.seed);
        assert_eq!(WorkloadTrace::generate(&s, &topo).churn_events(), 12);
        let s = spec(WorkloadKind::Storm);
        assert!(WorkloadTrace::generate(&s, &topo).queries() >= 3 * 8);
    }

    #[test]
    fn mobility_traces_follow_the_motion_model() {
        let s = ScenarioSpec {
            family: TopologyFamily::MobilityMesh {
                n: 48,
                horizon_secs: 30,
            },
            workload: WorkloadKind::Churn,
            seed: 9,
            anchors: 3,
            max_hops: 3,
            churn_steps: 10,
            storm_queries: 8,
            slice: true,
        };
        let topo = s.family.build(s.seed);
        let a = WorkloadTrace::generate(&s, &topo);
        assert_eq!(a, WorkloadTrace::generate(&s, &topo));
        assert!(a.churn_events() > 0, "nodes moving at 1-20 m/s churn links");
    }
}
