//! Wall-clock probes for the suite. Ignored by default — run them when
//! tuning scenario sizes:
//!
//! ```sh
//! cargo test --release -p scenario --test suite_timing -- --ignored --nocapture
//! NT_SCENARIO_SCALE=full cargo test --release -p scenario --test suite_timing -- --ignored --nocapture
//! ```

use scenario::{run_scenario, suite, SuiteScale};

#[test]
#[ignore = "timing probe, run explicitly when tuning suite sizes"]
fn time_the_suite() {
    let scale = match std::env::var("NT_SCENARIO_SCALE").as_deref() {
        Ok("full") => SuiteScale::Full,
        _ => SuiteScale::Slice,
    };
    let mut total = 0.0;
    for spec in suite(scale) {
        let outcome = run_scenario(&spec);
        total += outcome.converge_wall_ms + outcome.replay_wall_ms;
        println!(
            "{:<28} nodes={:<6} links={:<6} tuples={:<8} converge={:>8.0}ms replay={:>8.0}ms \
             rounds={:<4} churn={:<4} queries={:<4} p50={:.1}ms p99={:.1}ms",
            outcome.name,
            outcome.nodes,
            outcome.links,
            outcome.converged_tuples,
            outcome.converge_wall_ms,
            outcome.replay_wall_ms,
            outcome.converge_rounds,
            outcome.churn_events,
            outcome.queries,
            outcome.p50_ms(),
            outcome.p99_ms(),
        );
    }
    println!("total: {:.1}s", total / 1000.0);
}
