//! End-to-end scenario replay: sanity of a full run and the bit-identity
//! contract — a trace replays identically across runs and across engine
//! worker counts.

use proptest::prelude::*;
use scenario::{
    run_scenario, run_scenario_with_workers, verify_seed, ScenarioSpec, TopologyFamily,
    WorkloadKind,
};

fn small_spec(workload: WorkloadKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        family: TopologyFamily::SmallWorld {
            n: 32,
            k: 4,
            beta_percent: 20,
        },
        workload,
        seed,
        anchors: 3,
        max_hops: 3,
        churn_steps: 9,
        storm_queries: 6,
        slice: true,
    }
}

#[test]
fn a_full_scenario_run_reports_sane_measurements() {
    let spec = small_spec(WorkloadKind::Mixed, 42);
    let outcome = run_scenario(&spec);
    assert_eq!(outcome.nodes, 32);
    assert!(outcome.converge_rounds > 0);
    assert!(
        outcome.converged_tuples > 0,
        "routes derived at convergence"
    );
    assert!(outcome.churn_events > 0);
    assert!(outcome.queries > 0, "storms ran");
    assert_eq!(outcome.queries, outcome.latencies_ms.len());
    assert!(
        outcome.latencies_ms.iter().all(|&l| l >= 0.0),
        "latency is measured off the simulated clock"
    );
    assert!(outcome.p99_ms() >= outcome.p50_ms());
    assert!(outcome.tuples_touched > 0, "churn reached the engines");
    assert!(outcome.sim_ms > 0.0, "the replay consumed simulated time");
    assert!(verify_seed(&spec, &outcome));
}

#[test]
fn storms_measure_nonzero_latency_on_remote_queries() {
    let spec = small_spec(WorkloadKind::Storm, 7);
    let outcome = run_scenario(&spec);
    assert!(outcome.queries >= 3 * 6, "three storm waves");
    assert!(
        outcome.latencies_ms.iter().any(|&l| l > 0.0),
        "some session crossed the wire"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn replay_is_bit_identical_across_runs_and_worker_counts(
        seed in any::<u64>(),
        workload_idx in 0usize..3,
    ) {
        let workload = [WorkloadKind::Churn, WorkloadKind::Storm, WorkloadKind::Mixed]
            [workload_idx];
        let spec = small_spec(workload, seed);
        let base = run_scenario(&spec);
        let again = run_scenario(&spec);
        prop_assert_eq!(base.replay_digest, again.replay_digest);
        prop_assert_eq!(&base.latencies_ms, &again.latencies_ms);
        for workers in [2usize, 4] {
            let parallel = run_scenario_with_workers(&spec, workers);
            prop_assert_eq!(
                base.replay_digest,
                parallel.replay_digest,
                "worker count {} must not change the replay",
                workers
            );
            prop_assert_eq!(base.queries, parallel.queries);
            prop_assert_eq!(base.tuples_touched, parallel.tuples_touched);
        }
        prop_assert!(verify_seed(&spec, &base));
    }
}
