//! # protocols — declarative networking protocols in NDlog
//!
//! The first NetTrails use case ("Declarative networks", Section 3) runs
//! distributed systems written in NDlog on top of the platform: the MINCOST
//! protocol shown in the screenshots, the path-vector protocol, and dynamic
//! source routing (DSR) for mobile networks. This crate contains those
//! programs (plus distance-vector, used by the incremental-maintenance
//! benchmarks) together with helpers that turn a [`simnet::Topology`] into the
//! base `link` tuples each node starts from.
//!
//! Every program is expressed in the NDlog dialect of the `ndlog` crate and is
//! compiled/validated by its unit tests, so the programs double as living
//! documentation of the language.

pub mod distancevector;
pub mod dsr;
pub mod mincost;
pub mod pathvector;

use nt_runtime::{Tuple, Value};
use simnet::Topology;

/// A protocol bundled with the metadata the platform and the benchmarks need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// Human-readable protocol name.
    pub name: &'static str,
    /// The NDlog source text.
    pub source: &'static str,
    /// The relation that carries network links (always arity 3:
    /// `link(@From, To, Cost)`).
    pub link_relation: &'static str,
    /// The relation a user would typically query the provenance of (e.g.
    /// `minCost`, `bestPathCost`), used by examples and benchmarks.
    pub result_relation: &'static str,
}

/// All bundled protocols.
pub fn all_protocols() -> Vec<ProtocolSpec> {
    vec![
        mincost::spec(),
        pathvector::spec(),
        distancevector::spec(),
        dsr::spec(),
    ]
}

/// Build the base `link(@From, To, Cost)` tuple for a directed link.
pub fn link_tuple(from: &str, to: &str, cost: i64) -> Tuple {
    Tuple::new(
        "link",
        vec![Value::addr(from), Value::addr(to), Value::Int(cost)],
    )
}

/// The base `link` tuples of a topology, grouped with the node each belongs to
/// (the link's source, per the `@From` location specifier).
pub fn link_tuples(topology: &Topology) -> Vec<(String, Tuple)> {
    topology
        .links()
        .map(|l| (l.from.clone(), link_tuple(&l.from, &l.to, l.cost)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_compile_and_validate() {
        for spec in all_protocols() {
            let compiled = nt_runtime::CompiledProgram::from_source(spec.source)
                .unwrap_or_else(|e| panic!("{} does not compile: {e}", spec.name));
            assert!(
                compiled
                    .catalog
                    .schema(spec.link_relation)
                    .map(|s| s.is_base)
                    .unwrap_or(false),
                "{}: link relation must be a base relation",
                spec.name
            );
            assert!(
                compiled.catalog.schema(spec.result_relation).is_some(),
                "{}: result relation missing",
                spec.name
            );
        }
    }

    #[test]
    fn link_tuples_follow_the_topology() {
        let topo = Topology::line(3);
        let links = link_tuples(&topo);
        assert_eq!(links.len(), 4);
        assert!(links
            .iter()
            .all(|(node, t)| t.relation == "link" && t.values[0] == Value::addr(node.as_str())));
    }

    #[test]
    fn link_tuple_shape() {
        let t = link_tuple("n1", "n2", 4);
        assert_eq!(t.to_string(), "link(n1,n2,4)");
    }
}
