//! The path-vector protocol: best paths with explicit path attributes.
//!
//! Path-vector routing (the abstraction behind BGP) carries the full path in
//! each route so that loops can be detected by membership tests. The paper
//! lists it as one of the declarative-network use cases; its provenance trees
//! are deeper and wider than MINCOST's, which is what makes it the interesting
//! workload for the query-optimization experiments.

use crate::ProtocolSpec;

/// The NDlog source of the path-vector protocol.
pub const PROGRAM: &str = "\
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3,4)).
materialize(bestPathCost, infinity, infinity, keys(1,2)).

pv1 path(@S,D,P,C) :- link(@S,D,C), P := f_initlist2(S, D).
pv2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), f_member(P2, S) == 0, C := C1 + C2, P := f_prepend(S, P2).
pv3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
";

/// Protocol metadata.
pub fn spec() -> ProtocolSpec {
    ProtocolSpec {
        name: "PATH-VECTOR",
        source: PROGRAM,
        link_relation: "link",
        result_relation: "bestPathCost",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_compiles_and_localizes() {
        let compiled = nt_runtime::CompiledProgram::from_source(PROGRAM).unwrap();
        // pv1, pv2_s1, pv2, pv3
        assert_eq!(compiled.rules.len(), 4);
        assert!(compiled.rule("pv2_s1").is_some());
    }

    #[test]
    fn loop_check_uses_member_builtin() {
        let program = ndlog::compile(PROGRAM).unwrap();
        let pv2 = program.rule("pv2").unwrap();
        assert!(pv2.to_string().contains("f_member"));
    }
}
