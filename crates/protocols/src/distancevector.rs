//! The distance-vector protocol: shortest costs plus next hops.
//!
//! Distance-vector routing is the third classic protocol of the declarative
//! networking literature; NetTrails' incremental-maintenance experiments use
//! it because its `route` table (which remembers the next hop) reacts to link
//! failures differently from MINCOST's cost table. Rule `dv2` uses the same
//! `C < 255` cost horizon as MINCOST (see `mincost`) to bound
//! count-to-infinity after disconnections.

use crate::ProtocolSpec;

/// The NDlog source of the distance-vector protocol.
pub const PROGRAM: &str = "\
materialize(link, infinity, infinity, keys(1,2)).
materialize(route, infinity, infinity, keys(1,2,3,4)).
materialize(shortestCost, infinity, infinity, keys(1,2)).

dv1 route(@S,D,D,C) :- link(@S,D,C).
dv2 route(@S,D,Z,C) :- link(@S,Z,C1), shortestCost(@Z,D,C2), C := C1 + C2, C < 255.
dv3 shortestCost(@S,D,min<C>) :- route(@S,D,Z,C).
";

/// Protocol metadata.
pub fn spec() -> ProtocolSpec {
    ProtocolSpec {
        name: "DISTANCE-VECTOR",
        source: PROGRAM,
        link_relation: "link",
        result_relation: "shortestCost",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_compiles() {
        let compiled = nt_runtime::CompiledProgram::from_source(PROGRAM).unwrap();
        assert!(compiled.rule("dv3").unwrap().aggregate.is_some());
    }

    #[test]
    fn next_hop_column_is_carried() {
        let program = ndlog::compile(PROGRAM).unwrap();
        assert_eq!(program.rule("dv2").unwrap().head.arity(), 4);
    }
}
