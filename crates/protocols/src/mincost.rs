//! The MINCOST protocol: pair-wise minimal path costs.
//!
//! This is the protocol used throughout the paper's screenshots (Figures 2
//! and 3): every node computes, for every destination, the cost of the
//! cheapest path, by recursively combining its links with its neighbours'
//! current minima.
//!
//! Rule `mc2` carries a **cost horizon** (`C < 255`): like RIP's "infinity =
//! 16", it bounds the count-to-infinity behaviour that any distance-vector
//! style computation exhibits when a destination becomes unreachable, so that
//! incremental deletion converges (all state for the unreachable destination
//! is retracted) instead of counting up forever.

use crate::ProtocolSpec;

/// The NDlog source of the MINCOST protocol.
pub const PROGRAM: &str = "\
materialize(link, infinity, infinity, keys(1,2)).
materialize(cost, infinity, infinity, keys(1,2,3)).
materialize(minCost, infinity, infinity, keys(1,2)).

mc1 cost(@S,D,C) :- link(@S,D,C).
mc2 cost(@S,D,C) :- link(@S,Z,C1), minCost(@Z,D,C2), C := C1 + C2, C < 255.
mc3 minCost(@S,D,min<C>) :- cost(@S,D,C).
";

/// Protocol metadata.
pub fn spec() -> ProtocolSpec {
    ProtocolSpec {
        name: "MINCOST",
        source: PROGRAM,
        link_relation: "link",
        result_relation: "minCost",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_parses_with_expected_rules() {
        let program = ndlog::compile(PROGRAM).unwrap();
        assert_eq!(program.rules.len(), 3);
        assert!(program.rule("mc2").unwrap().body.len() >= 3);
        assert!(program.rule("mc3").unwrap().is_aggregate());
    }

    #[test]
    fn recursive_rule_is_link_restricted() {
        let program = ndlog::compile(PROGRAM).unwrap();
        let localized = ndlog::localize::localize_rule(program.rule("mc2").unwrap()).unwrap();
        assert_eq!(localized.remote_locations, vec!["Z".to_string()]);
    }
}
