//! Dynamic source routing (DSR) for mobile networks.
//!
//! DSR nodes discover complete source routes to destinations; routes are
//! re-discovered as the (mobile) topology changes. The paper uses DSR to show
//! NetTrails maintaining provenance while "network state is incrementally
//! recomputed as the underlying network topology changes" in a *mobile*
//! environment; the `simnet::RandomWaypoint` model provides the link churn.

use crate::ProtocolSpec;

/// The NDlog source of the (table-driven) DSR route-discovery program.
pub const PROGRAM: &str = "\
materialize(link, infinity, infinity, keys(1,2)).
materialize(route, infinity, infinity, keys(1,2,3)).
materialize(shortestRoute, infinity, infinity, keys(1,2)).

dsr1 route(@S,D,P) :- link(@S,D,C), P := f_initlist2(S, D).
dsr2 route(@S,D,P) :- link(@S,Z,C), route(@Z,D,P2), f_member(P2, S) == 0, P := f_prepend(S, P2).
dsr3 shortestRoute(@S,D,min<L>) :- route(@S,D,P), L := f_size(P).
";

/// Protocol metadata.
pub fn spec() -> ProtocolSpec {
    ProtocolSpec {
        name: "DSR",
        source: PROGRAM,
        link_relation: "link",
        result_relation: "shortestRoute",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_compiles() {
        let compiled = nt_runtime::CompiledProgram::from_source(PROGRAM).unwrap();
        assert!(compiled.rule("dsr2").is_some());
        assert!(compiled.rule("dsr3").unwrap().aggregate.is_some());
    }

    #[test]
    fn aggregate_over_assigned_variable_is_allowed() {
        // dsr3 aggregates L, which is bound by an assignment, not an atom.
        ndlog::compile(PROGRAM).unwrap();
    }
}
