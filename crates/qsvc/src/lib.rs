//! The multi-tenant query service: admission control, per-tenant fair
//! scheduling and deadline enforcement over the platform's distributed
//! query executor.
//!
//! The service sits between tenants and [`NetTrails`]: tenants build
//! [`ServiceRequest`]s through [`NetTrails::service`] and hand them to
//! [`QueryService::enqueue`], which either queues them FIFO per tenant or
//! rejects them with [`Overloaded`] once that tenant's queue is at cap.
//! [`QueryService::pump`] then drives three stages against the shared
//! platform:
//!
//! 1. **Admit** — deficit-round-robin across tenants with queued work: each
//!    visit to a tenant grants [`ServiceConfig::quantum`] session credits,
//!    and sessions are submitted (one credit each) while credit and the
//!    global [`ServiceConfig::max_in_flight`] budget last. A flash-crowd
//!    tenant can fill its own queue but never the dispatch ring: every
//!    other backlogged tenant is visited once per round, so admission
//!    stays proportional to quantum, not to offered load.
//! 2. **Pump** — one [`NetTrails::poll_queries`] step: staged query frames
//!    flush (merged per destination when the platform runs with
//!    `merge_query_frames`), the network advances, deliveries dispatch.
//! 3. **Reap** — finished sessions are redeemed through the non-panicking
//!    [`NetTrails::try_wait_query`]; in-flight sessions past their
//!    deadline are cancelled ([`NetTrails::cancel_query`] keeps the
//!    traffic they already spent) and their handles redeemed through the
//!    same non-panicking path. Queued sessions whose deadline lapses
//!    before admission are dropped without ever touching the executor.
//!
//! All accounting — admissions, rejections, completions, expiries and a
//! [`provenance::QueryStats`] rollup — is kept per tenant and is fully
//! deterministic: tenants live in a `BTreeMap`, the dispatch ring is an
//! explicit queue, and all timing is simulated-clock.

use nettrails::platform::ServiceRequest;
use nettrails::NetTrails;
use provenance::{QueryHandle, QueryResult, QueryStats};
use serde::{Deserialize, Serialize};
use simnet::SimTime;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Admission-control and scheduling parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Global budget of concurrently running sessions. Admission stops at
    /// the budget; queued work waits for a slot.
    pub max_in_flight: usize,
    /// Per-tenant queue cap: an `enqueue` that would push a tenant's queue
    /// past this is rejected with [`Overloaded`].
    pub queue_cap: usize,
    /// Deficit-round-robin quantum: session credits granted per visit to a
    /// backlogged tenant. `1` (the default) is strict round-robin; larger
    /// values trade fairness granularity for burstier per-tenant dispatch.
    pub quantum: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_in_flight: 64,
            queue_cap: 256,
            quantum: 1,
        }
    }
}

/// Explicit admission rejection: the tenant's wait queue is at
/// [`ServiceConfig::queue_cap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overloaded {
    /// Tenant whose queue is full.
    pub tenant: String,
    /// Sessions queued for that tenant at rejection time.
    pub queued: usize,
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tenant {:?} overloaded: {} sessions already queued",
            self.tenant, self.queued
        )
    }
}

impl std::error::Error for Overloaded {}

/// Per-tenant accounting, updated as sessions move through the service.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Requests offered through `enqueue` (accepted + rejected).
    pub offered: u64,
    /// Requests rejected with [`Overloaded`].
    pub rejected: u64,
    /// Sessions submitted to the executor.
    pub admitted: u64,
    /// Sessions that completed with a result.
    pub completed: u64,
    /// Sessions cancelled by deadline (queued or in flight).
    pub expired: u64,
    /// Sum of per-session [`QueryStats`] over completed and expired
    /// sessions (`latency_ms` accumulates total session-time).
    pub rollup: QueryStats,
}

/// One finished session, in completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Ticket returned by [`QueryService::enqueue`].
    pub ticket: u64,
    /// Tenant the session was accounted to.
    pub tenant: String,
    /// The session's final stats (traffic spent so far, for expired
    /// sessions).
    pub stats: QueryStats,
    /// The query result; `None` when the session expired.
    pub result: Option<QueryResult>,
    /// True when the session was cancelled by its deadline.
    pub expired: bool,
}

#[derive(Debug)]
struct Pending {
    ticket: u64,
    request: ServiceRequest,
    /// Absolute expiry on the simulated clock (enqueue time + deadline).
    deadline: Option<SimTime>,
}

#[derive(Debug)]
struct InFlight {
    ticket: u64,
    tenant: String,
    handle: QueryHandle,
    deadline: Option<SimTime>,
}

#[derive(Debug, Default)]
struct TenantState {
    queue: VecDeque<Pending>,
    deficit: usize,
    stats: TenantStats,
}

/// The service loop state; see the crate docs for the pump stages.
#[derive(Debug)]
pub struct QueryService {
    config: ServiceConfig,
    tenants: BTreeMap<String, TenantState>,
    /// Dispatch ring: tenants with queued work, in round-robin order.
    ring: VecDeque<String>,
    in_flight: Vec<InFlight>,
    completions: Vec<Completion>,
    next_ticket: u64,
}

impl QueryService {
    /// A service with the given admission parameters.
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.max_in_flight > 0, "budget must admit something");
        assert!(config.quantum > 0, "quantum must make progress");
        QueryService {
            config,
            tenants: BTreeMap::new(),
            ring: VecDeque::new(),
            in_flight: Vec::new(),
            completions: Vec::new(),
            next_ticket: 0,
        }
    }

    /// Queue a request FIFO behind its tenant's earlier requests. Returns a
    /// ticket (matched by [`Completion::ticket`]) or [`Overloaded`] when
    /// the tenant's queue is at cap. The deadline clock starts now — time a
    /// session spends waiting for admission counts against it.
    pub fn enqueue(&mut self, nt: &NetTrails, request: ServiceRequest) -> Result<u64, Overloaded> {
        let tenant = request.tenant.clone();
        let state = self.tenants.entry(tenant.clone()).or_default();
        state.stats.offered += 1;
        if state.queue.len() >= self.config.queue_cap {
            state.stats.rejected += 1;
            return Err(Overloaded {
                tenant,
                queued: state.queue.len(),
            });
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let deadline = request
            .deadline_ms
            .map(|ms| nt.now() + SimTime::from_secs_f64(ms / 1000.0));
        if state.queue.is_empty() {
            self.ring.push_back(tenant);
        }
        state.queue.push_back(Pending {
            ticket,
            request,
            deadline,
        });
        Ok(ticket)
    }

    /// One service step: admit (DRR), pump the query plane once, reap.
    /// Returns true while anything moved — false means the service is idle
    /// (or genuinely stuck, which [`QueryService::run`] treats as a bug).
    pub fn pump(&mut self, nt: &mut NetTrails) -> bool {
        let admitted = self.admit(nt);
        let pumped = nt.poll_queries();
        let reaped = self.reap(nt);
        admitted || pumped || reaped
    }

    /// Drive the service until every queued and in-flight session has
    /// completed or expired. Panics if no stage can make progress (an
    /// executor bug, never load).
    pub fn run(&mut self, nt: &mut NetTrails) {
        while !self.idle() {
            assert!(self.pump(nt), "query service stalled with pending work");
        }
    }

    /// True when no work is queued or in flight.
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty() && self.tenants.values().all(|t| t.queue.is_empty())
    }

    /// Deficit-round-robin admission; returns true when any session was
    /// submitted or dropped at admission.
    fn admit(&mut self, nt: &mut NetTrails) -> bool {
        let mut progressed = false;
        while self.in_flight.len() < self.config.max_in_flight {
            let Some(tenant) = self.ring.pop_front() else {
                break;
            };
            let state = self.tenants.get_mut(&tenant).expect("ring tenant exists");
            state.deficit += self.config.quantum;
            while state.deficit > 0 && self.in_flight.len() < self.config.max_in_flight {
                let Some(pending) = state.queue.pop_front() else {
                    break;
                };
                progressed = true;
                let now = nt.now();
                if pending.deadline.is_some_and(|d| d <= now) {
                    // Expired while waiting: dropped without ever touching
                    // the executor, and without spending deficit.
                    state.stats.expired += 1;
                    self.completions.push(Completion {
                        ticket: pending.ticket,
                        tenant: tenant.clone(),
                        stats: QueryStats::default(),
                        result: None,
                        expired: true,
                    });
                    continue;
                }
                state.deficit -= 1;
                state.stats.admitted += 1;
                let handle = nt.submit_query(pending.request.spec);
                self.in_flight.push(InFlight {
                    ticket: pending.ticket,
                    tenant: tenant.clone(),
                    handle,
                    deadline: pending.deadline,
                });
            }
            if state.queue.is_empty() {
                // Out of the ring; credit does not carry across idle spells.
                state.deficit = 0;
            } else {
                self.ring.push_back(tenant);
            }
        }
        progressed
    }

    /// Redeem finished sessions and cancel in-flight sessions past their
    /// deadline; returns true when any session left the in-flight set.
    fn reap(&mut self, nt: &mut NetTrails) -> bool {
        let now = nt.now();
        let before = self.in_flight.len();
        let mut still = Vec::with_capacity(before);
        for session in self.in_flight.drain(..) {
            if nt.query_done(session.handle) {
                // A result that arrived before the reaper ran is accepted
                // even if the deadline has since passed: the work is paid.
                let Some((result, stats)) = nt.try_wait_query(session.handle) else {
                    unreachable!("service sessions are only cancelled below");
                };
                let state = self.tenants.get_mut(&session.tenant).expect("known tenant");
                state.stats.completed += 1;
                accumulate(&mut state.stats.rollup, &stats);
                self.completions.push(Completion {
                    ticket: session.ticket,
                    tenant: session.tenant,
                    stats,
                    result: Some(result),
                    expired: false,
                });
            } else if session.deadline.is_some_and(|d| d <= now) {
                // Cancel keeps the traffic the session already spent; the
                // handle is then redeemed through the non-panicking path
                // (`None`: cancelled, not completed).
                let stats = nt.cancel_query(session.handle);
                let redeemed = nt.try_wait_query(session.handle);
                debug_assert!(redeemed.is_none(), "cancelled sessions yield no result");
                let state = self.tenants.get_mut(&session.tenant).expect("known tenant");
                state.stats.expired += 1;
                accumulate(&mut state.stats.rollup, &stats);
                self.completions.push(Completion {
                    ticket: session.ticket,
                    tenant: session.tenant,
                    stats,
                    result: None,
                    expired: true,
                });
            } else {
                still.push(session);
            }
        }
        self.in_flight = still;
        self.in_flight.len() < before
    }

    /// Drain the completions accumulated so far, in completion order.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Per-tenant accounting, in tenant-name order.
    pub fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        self.tenants
            .iter()
            .map(|(name, state)| (name.clone(), state.stats.clone()))
            .collect()
    }

    /// Sessions currently running on the executor.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Fairness of completed work: max/min completed sessions across
    /// tenants that offered any. `1.0` with fewer than two tenants;
    /// infinite when a tenant completed nothing.
    pub fn fairness_ratio(&self) -> f64 {
        let completed: Vec<u64> = self
            .tenants
            .values()
            .filter(|t| t.stats.offered > 0)
            .map(|t| t.stats.completed)
            .collect();
        if completed.len() < 2 {
            return 1.0;
        }
        let max = *completed.iter().max().expect("non-empty") as f64;
        let min = *completed.iter().min().expect("non-empty") as f64;
        if min == 0.0 {
            return f64::INFINITY;
        }
        max / min
    }
}

/// Sum `s` into `into`, field by field (`latency_ms` accumulates total
/// session-time).
fn accumulate(into: &mut QueryStats, s: &QueryStats) {
    into.messages += s.messages;
    into.records += s.records;
    into.bytes += s.bytes;
    into.dict_bytes += s.dict_bytes;
    into.vertices_visited += s.vertices_visited;
    into.cache_hits += s.cache_hits;
    into.latency_ms += s.latency_ms;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrails::runtime::Tuple;
    use nettrails::NetTrailsConfig;
    use simnet::Topology;

    fn platform() -> NetTrails {
        let mut nt = NetTrails::new(
            protocols::mincost::PROGRAM,
            Topology::line(4),
            NetTrailsConfig::with_merged_query_frames(),
        )
        .unwrap();
        nt.seed_links_from_topology();
        nt.run_to_fixpoint();
        nt
    }

    fn far_target(nt: &NetTrails) -> Tuple {
        nt.find_tuple("minCost", |t| {
            t.values[0].as_addr() == Some("n1") && t.values[1].as_addr() == Some("n4")
        })
        .map(|(_, t)| t)
        .expect("minCost(n1,n4) converged")
    }

    fn request(nt: &mut NetTrails, tenant: &str, target: &Tuple) -> ServiceRequest {
        nt.service(tenant).query(target).from_node("n4").request()
    }

    /// Strict round-robin under a flash crowd: tenant `crowd` offers 6
    /// sessions, tenant `calm` offers 3; with one in-flight slot the
    /// completion order alternates until `calm` drains, and the fairness
    /// ratio over the common prefix stays bounded.
    #[test]
    fn flash_crowd_cannot_starve_other_tenants() {
        let mut nt = platform();
        let target = far_target(&nt);
        let mut svc = QueryService::new(ServiceConfig {
            max_in_flight: 1,
            ..ServiceConfig::default()
        });
        let mut crowd_tickets = Vec::new();
        for _ in 0..6 {
            let req = request(&mut nt, "crowd", &target);
            crowd_tickets.push(svc.enqueue(&nt, req).unwrap());
        }
        let mut calm_tickets = Vec::new();
        for _ in 0..3 {
            let req = request(&mut nt, "calm", &target);
            calm_tickets.push(svc.enqueue(&nt, req).unwrap());
        }
        svc.run(&mut nt);
        let completions = svc.take_completions();
        assert_eq!(completions.len(), 9);
        assert!(completions.iter().all(|c| !c.expired));
        // Round-robin interleaving: each of the first three (crowd, calm)
        // rounds completes one session of each tenant.
        let order: Vec<&str> = completions.iter().map(|c| c.tenant.as_str()).collect();
        assert_eq!(
            &order[..6],
            &["crowd", "calm", "crowd", "calm", "crowd", "calm"],
            "calm must not wait behind the whole crowd"
        );
        // FIFO within each tenant.
        let crowd_done: Vec<u64> = completions
            .iter()
            .filter(|c| c.tenant == "crowd")
            .map(|c| c.ticket)
            .collect();
        assert_eq!(crowd_done, crowd_tickets);
        let stats = svc.tenant_stats();
        assert_eq!(stats[1].0, "crowd");
        assert_eq!(stats[1].1.completed, 6);
        assert_eq!(stats[0].0, "calm");
        assert_eq!(stats[0].1.completed, 3);
        assert!(stats.iter().all(|(_, s)| s.rollup.messages > 0));
        assert_eq!(svc.fairness_ratio(), 2.0);
    }

    /// Past the per-tenant queue cap, enqueue rejects explicitly instead of
    /// queueing unboundedly — and only the overloaded tenant is affected.
    #[test]
    fn overloaded_tenants_are_rejected_explicitly() {
        let mut nt = platform();
        let target = far_target(&nt);
        let mut svc = QueryService::new(ServiceConfig {
            max_in_flight: 1,
            queue_cap: 2,
            ..ServiceConfig::default()
        });
        for _ in 0..2 {
            let req = request(&mut nt, "crowd", &target);
            svc.enqueue(&nt, req).unwrap();
        }
        let req = request(&mut nt, "crowd", &target);
        let err = svc.enqueue(&nt, req).unwrap_err();
        assert_eq!(err.tenant, "crowd");
        assert_eq!(err.queued, 2);
        let req = request(&mut nt, "calm", &target);
        svc.enqueue(&nt, req).expect("other tenants unaffected");
        svc.run(&mut nt);
        let stats = svc.tenant_stats();
        assert_eq!(stats[1].1.offered, 3);
        assert_eq!(stats[1].1.rejected, 1);
        assert_eq!(stats[1].1.completed, 2);
        assert_eq!(svc.take_completions().len(), 3);
    }

    /// Deadlines cancel expired work on both paths: in flight (cancelled
    /// with its traffic kept) and still queued (dropped for free).
    #[test]
    fn deadlines_cancel_expired_sessions() {
        let mut nt = platform();
        let target = far_target(&nt);
        let mut svc = QueryService::new(ServiceConfig {
            max_in_flight: 1,
            ..ServiceConfig::default()
        });
        // Both sessions get a deadline shorter than one network hop: the
        // first expires in flight, the second expires in the wait queue.
        for _ in 0..2 {
            let req = request(&mut nt, "ops", &target);
            let req = ServiceRequest {
                deadline_ms: Some(0.25),
                ..req
            };
            svc.enqueue(&nt, req).unwrap();
        }
        // An undeadlined session behind them still completes.
        let req = request(&mut nt, "ops", &target);
        svc.enqueue(&nt, req).unwrap();
        svc.run(&mut nt);
        let completions = svc.take_completions();
        assert_eq!(completions.len(), 3);
        let expired: Vec<&Completion> = completions.iter().filter(|c| c.expired).collect();
        assert_eq!(expired.len(), 2);
        assert!(expired.iter().all(|c| c.result.is_none()));
        assert!(
            expired[0].stats.messages > 0,
            "in-flight expiry keeps the traffic it spent"
        );
        assert_eq!(
            expired[1].stats,
            QueryStats::default(),
            "queued expiry never touches the executor"
        );
        let done = completions.iter().find(|c| !c.expired).expect("one done");
        assert!(done.result.is_some());
        let stats = svc.tenant_stats();
        assert_eq!(stats[0].1.expired, 2);
        assert_eq!(stats[0].1.completed, 1);
        assert_eq!(stats[0].1.admitted, 2, "queued expiry was never admitted");
    }

    /// The in-flight budget bounds concurrency; the wait queue absorbs the
    /// rest and drains deterministically.
    #[test]
    fn budget_bounds_in_flight_sessions() {
        let mut nt = platform();
        let target = far_target(&nt);
        let mut svc = QueryService::new(ServiceConfig {
            max_in_flight: 2,
            ..ServiceConfig::default()
        });
        for _ in 0..5 {
            let req = request(&mut nt, "ops", &target);
            svc.enqueue(&nt, req).unwrap();
        }
        let mut peak = 0;
        while !svc.idle() {
            assert!(svc.pump(&mut nt));
            peak = peak.max(svc.in_flight());
            assert!(svc.in_flight() <= 2, "budget exceeded");
        }
        assert_eq!(peak, 2, "budget is actually used");
        assert_eq!(svc.take_completions().len(), 5);
    }
}
