//! Scenario-suite topology generators: seeded determinism, node/edge counts
//! and degree bounds for fat-tree, AS-level internet and small-world graphs,
//! plus the adjacency-iterator API.

use proptest::prelude::*;
use simnet::{MobilityModel, RandomWaypoint, Topology};

#[test]
fn fat_tree_counts_and_degrees() {
    let k = 4;
    let t = Topology::fat_tree(k, 7);
    // (k/2)^2 core + k pods * (k/2 agg + k/2 edge) + k * (k/2)^2 hosts.
    assert_eq!(t.node_count(), 4 + 16 + 16);
    // 3k^3/4 bidirectional links = 3k^3/2 directed.
    assert_eq!(t.link_count(), 96);
    for node in t.nodes() {
        let deg = t.degree(node);
        if node.contains('h') {
            assert_eq!(deg, 1, "host {node} must hang off one edge switch");
        } else {
            assert_eq!(deg, k, "switch {node} must have degree k");
        }
    }
}

#[test]
fn fat_tree_is_seed_deterministic() {
    assert_eq!(Topology::fat_tree(8, 42), Topology::fat_tree(8, 42));
    assert_ne!(Topology::fat_tree(8, 42), Topology::fat_tree(8, 43));
}

#[test]
fn internet_as_counts_and_degrees() {
    let (n, m) = (200, 2);
    let t = Topology::internet_as(n, m, 11);
    assert_eq!(t.node_count(), n);
    // Seed clique C(m+1,2) + m new edges per later node, times 2 directions.
    let undirected = (m + 1) * m / 2 + (n - m - 1) * m;
    assert_eq!(t.link_count(), 2 * undirected);
    let mut max_deg = 0;
    for node in t.nodes() {
        let deg = t.degree(node);
        assert!(deg >= m, "{node} attached with at least m links");
        max_deg = max_deg.max(deg);
    }
    // Preferential attachment grows hubs far above the minimum degree.
    assert!(max_deg >= 4 * m, "expected hubs, max degree was {max_deg}");
    for l in t.links() {
        assert!((1..=5).contains(&l.cost), "tiered costs live in 1..=5");
    }
}

#[test]
fn small_world_counts_and_degrees() {
    let (n, k) = (120, 6);
    let t = Topology::small_world(n, k, 15, 3);
    assert_eq!(t.node_count(), n);
    // Rewiring preserves the edge count exactly.
    assert_eq!(t.link_count(), n * k);
    for node in t.nodes() {
        assert!(
            t.degree(node) >= k / 2,
            "{node} keeps its own lattice edges"
        );
    }
}

#[test]
fn mobility_mesh_is_seed_deterministic() {
    let a = RandomWaypoint::mesh(64, 60.0, 9).topology_at(0.0);
    let b = RandomWaypoint::mesh(64, 60.0, 9).topology_at(0.0);
    assert_eq!(a, b);
    assert_eq!(a.node_count(), 64);
    for l in a.links() {
        assert!(a.has_link(&l.to, &l.from), "radio links are symmetric");
    }
}

#[test]
fn neighbors_iter_matches_full_scan() {
    let t = Topology::internet_as(80, 2, 5);
    for node in t.nodes() {
        let scanned: Vec<_> = t.links().filter(|l| l.from == node).collect();
        let ranged: Vec<_> = t.neighbors_iter(node).collect();
        assert_eq!(scanned, ranged);
        assert_eq!(t.degree(node), scanned.len());
        assert_eq!(t.neighbors(node), scanned);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generators_are_pure_functions_of_their_seed(seed in any::<u64>()) {
        prop_assert_eq!(Topology::fat_tree(4, seed), Topology::fat_tree(4, seed));
        prop_assert_eq!(
            Topology::internet_as(60, 2, seed),
            Topology::internet_as(60, 2, seed)
        );
        prop_assert_eq!(
            Topology::small_world(40, 4, 20, seed),
            Topology::small_world(40, 4, 20, seed)
        );
    }

    #[test]
    fn small_world_edge_count_is_invariant(
        n in 10usize..60,
        seed in any::<u64>(),
        beta in 0u32..=100,
    ) {
        let t = Topology::small_world(n, 4, beta, seed);
        prop_assert_eq!(t.link_count(), n * 4);
    }
}
