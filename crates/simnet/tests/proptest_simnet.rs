//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use simnet::{MobilityModel, Network, NetworkConfig, RandomWaypoint, SimTime, Topology};

proptest! {
    /// Generated random topologies are connected and deterministic.
    #[test]
    fn random_topologies_are_connected(n in 2usize..20, p in 0.0f64..0.5, seed in any::<u64>()) {
        let topo = Topology::random(n, p, 5, seed);
        prop_assert_eq!(topo.node_count(), n);
        // BFS from n1 reaches every node.
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec!["n1".to_string()];
        while let Some(node) = stack.pop() {
            if seen.insert(node.clone()) {
                for l in topo.neighbors(&node) {
                    stack.push(l.to.clone());
                }
            }
        }
        prop_assert_eq!(seen.len(), n);
        // Determinism.
        prop_assert_eq!(topo, Topology::random(n, p, 5, seed));
    }

    /// Messages are always delivered in non-decreasing time order and nothing
    /// is lost.
    #[test]
    fn network_delivers_everything_in_time_order(
        sends in proptest::collection::vec((0usize..5, 0usize..5, 1usize..200), 1..30)
    ) {
        let topo = Topology::ring(5);
        let mut net: Network<usize> = Network::new(topo, NetworkConfig::default());
        let nodes: Vec<String> = (1..=5).map(|i| format!("n{i}")).collect();
        for (i, (from, to, bytes)) in sends.iter().enumerate() {
            net.send(&nodes[*from], &nodes[*to], i, *bytes, "test");
        }
        let mut delivered = 0;
        let mut last = SimTime::ZERO;
        while !net.idle() {
            let batch = net.advance();
            prop_assert!(!batch.is_empty());
            for d in batch {
                prop_assert!(d.at >= last);
                last = d.at;
                delivered += 1;
            }
        }
        prop_assert_eq!(delivered, sends.len());
        prop_assert_eq!(net.stats().messages, sends.len() as u64);
    }

    /// Mobility: positions stay inside the field and link sets are symmetric.
    #[test]
    fn mobility_positions_stay_in_field(seed in any::<u64>(), t in 0.0f64..120.0) {
        let model = RandomWaypoint::new(5, 200.0, 150.0, 80.0, 1.0, 3.0, 120.0, seed);
        for node in model.nodes() {
            let p = model.position(&node, t).unwrap();
            prop_assert!(p.x >= -1e-9 && p.x <= 200.0 + 1e-9);
            prop_assert!(p.y >= -1e-9 && p.y <= 150.0 + 1e-9);
        }
        let topo = model.topology_at(t);
        for l in topo.links() {
            prop_assert!(topo.has_link(&l.to, &l.from));
        }
    }
}
