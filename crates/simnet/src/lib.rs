//! # simnet — deterministic discrete-event network simulator
//!
//! NetTrails runs its declarative networking engine on top of the ns-3
//! simulator (through RapidNet). This crate is the ns-3 substitute used by the
//! reproduction: a small, fully deterministic discrete-event simulator that
//! provides exactly what the provenance platform observes —
//!
//! * named nodes connected by point-to-point links with latency and cost,
//! * message delivery with per-message size accounting (the query-optimization
//!   experiments of the paper measure *network traffic*),
//! * topology dynamics: link additions, failures and cost changes,
//! * a random-waypoint mobility model (for the DSR / mobile-network use case),
//! * per-category traffic statistics.
//!
//! The simulator is generic over the message payload type so that the runtime
//! (tuple deltas), the provenance query engine (traversal requests/replies)
//! and the log store (snapshot uploads) can all share one network.
//!
//! Determinism: all randomness is injected through seeded [`rand::rngs::StdRng`]
//! generators; event ordering is total (time, then sequence number).

pub mod mobility;
pub mod network;
pub mod stats;
pub mod time;
pub mod topology;

pub use mobility::{MobilityModel, Point, RandomWaypoint};
pub use network::{Delivered, Network, NetworkConfig};
pub use stats::TrafficStats;
pub use time::SimTime;
pub use topology::{Link, Topology, TopologyEvent};
