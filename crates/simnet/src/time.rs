//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, stored as integer microseconds so that event
/// ordering is exact and platform independent.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from fractional seconds (rounds to microseconds).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e6).round() as u64)
    }

    /// The time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The time as whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_secs_f64(), 0.5);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(13));
        assert_eq!(a - b, SimTime::from_millis(7));
        assert_eq!(b - a, SimTime::ZERO, "saturating subtraction");
        assert!(b < a);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(13));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
