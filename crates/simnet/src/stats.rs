//! Traffic accounting.
//!
//! The paper's query-optimization demonstration ("caching and threshold-based
//! pruning effectively reduce the network traffic") is quantified with these
//! counters: every message sent through [`crate::Network`] is charged to a
//! *category* (protocol maintenance, provenance maintenance, provenance query,
//! snapshot upload, ...), so experiments can report per-category message and
//! byte counts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Message/byte counters, total and per category.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Total records (tuples/deltas) carried by the messages. Equal to
    /// `messages` for unbatched traffic; batched delta shipping packs many
    /// records into one message, so `messages < records` measures how much
    /// coalescing happened.
    pub records: u64,
    /// Per-category (messages, bytes).
    pub by_category: BTreeMap<String, (u64, u64)>,
    /// Per-directed-link message counts, keyed by `"src->dst"`.
    pub by_link: BTreeMap<String, u64>,
}

impl TrafficStats {
    /// Record one message carrying a single record.
    pub fn record(&mut self, src: &str, dst: &str, category: &str, bytes: usize) {
        self.record_batch(src, dst, category, bytes, 1);
    }

    /// Record one message carrying `records` coalesced records.
    pub fn record_batch(
        &mut self,
        src: &str,
        dst: &str,
        category: &str,
        bytes: usize,
        records: usize,
    ) {
        self.messages += 1;
        self.bytes += bytes as u64;
        self.records += records as u64;
        let entry = self.by_category.entry(category.to_string()).or_default();
        entry.0 += 1;
        entry.1 += bytes as u64;
        *self.by_link.entry(format!("{src}->{dst}")).or_default() += 1;
    }

    /// Messages charged to a category.
    pub fn category_messages(&self, category: &str) -> u64 {
        self.by_category.get(category).map(|e| e.0).unwrap_or(0)
    }

    /// Bytes charged to a category.
    pub fn category_bytes(&self, category: &str) -> u64 {
        self.by_category.get(category).map(|e| e.1).unwrap_or(0)
    }

    /// Approximate upload cost of shipping these counters inside a snapshot:
    /// the three u64 totals plus per-category and per-link entries (a 4-byte
    /// interned id stands in for each key — names travel once in the
    /// snapshot's dictionary). Default/empty stats price to zero so an empty
    /// snapshot uploads nothing.
    pub fn wire_size(&self) -> usize {
        if *self == TrafficStats::default() {
            return 0;
        }
        24 + self.by_category.len() * (4 + 16) + self.by_link.len() * (4 + 8)
    }

    /// Merge another stats object into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.records += other.records;
        for (k, (m, b)) in &other.by_category {
            let e = self.by_category.entry(k.clone()).or_default();
            e.0 += m;
            e.1 += b;
        }
        for (k, m) in &other.by_link {
            *self.by_link.entry(k.clone()).or_default() += m;
        }
    }

    /// Difference relative to an earlier snapshot of the same counters
    /// (used to measure the traffic of a single query or a single event).
    pub fn since(&self, earlier: &TrafficStats) -> TrafficStats {
        let mut out = TrafficStats {
            messages: self.messages - earlier.messages,
            bytes: self.bytes - earlier.bytes,
            records: self.records - earlier.records,
            ..TrafficStats::default()
        };
        for (k, (m, b)) in &self.by_category {
            let (em, eb) = earlier.by_category.get(k).copied().unwrap_or((0, 0));
            if *m > em || *b > eb {
                out.by_category.insert(k.clone(), (m - em, b - eb));
            }
        }
        for (k, m) in &self.by_link {
            let em = earlier.by_link.get(k).copied().unwrap_or(0);
            if *m > em {
                out.by_link.insert(k.clone(), m - em);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = TrafficStats::default();
        s.record("n1", "n2", "proto", 100);
        s.record("n1", "n2", "prov-query", 40);
        s.record("n2", "n1", "prov-query", 60);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 200);
        assert_eq!(s.category_messages("prov-query"), 2);
        assert_eq!(s.category_bytes("prov-query"), 100);
        assert_eq!(s.category_messages("nope"), 0);
        assert_eq!(s.by_link["n1->n2"], 2);
    }

    #[test]
    fn merge_and_since() {
        let mut a = TrafficStats::default();
        a.record("n1", "n2", "proto", 10);
        let snapshot = a.clone();
        a.record("n1", "n2", "proto", 20);
        a.record("n2", "n3", "query", 5);

        let diff = a.since(&snapshot);
        assert_eq!(diff.messages, 2);
        assert_eq!(diff.bytes, 25);
        assert_eq!(diff.category_messages("proto"), 1);
        assert_eq!(diff.category_messages("query"), 1);

        let mut b = TrafficStats::default();
        b.record("n9", "n8", "query", 7);
        b.merge(&a);
        assert_eq!(b.messages, 4);
        assert_eq!(b.category_messages("query"), 2);
    }
}
