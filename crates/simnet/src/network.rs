//! The discrete-event message-passing core.
//!
//! [`Network`] maintains a priority queue of in-flight messages. The driver
//! (the `nettrails` platform) sends messages, then repeatedly calls
//! [`Network::advance`] to pop the next batch of deliveries and hand them to
//! the destination engines; engine reactions produce further sends, and the
//! simulation proceeds until the queue drains or a time horizon is reached.

use crate::stats::TrafficStats;
use crate::time::SimTime;
use crate::topology::Topology;
use nt_intern::NodeId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Network configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Latency applied to messages between nodes with no direct link (the
    /// distributed provenance query traversal may contact arbitrary nodes;
    /// NetTrails assumes an underlying routed network). In milliseconds.
    pub default_latency_ms: u64,
    /// Fixed per-message header overhead added to the payload size, in bytes.
    pub header_bytes: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            default_latency_ms: 5,
            header_bytes: 28,
        }
    }
}

/// A message delivered to a node. Endpoints are interned node ids, so
/// queueing and delivering a message never clones address strings.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivered<M> {
    /// Delivery time.
    pub at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload.
    pub payload: M,
    /// Category the message was charged to.
    pub category: String,
}

#[derive(Debug, Clone)]
struct InFlight<M> {
    deliver_at: SimTime,
    seq: u64,
    from: NodeId,
    to: NodeId,
    payload: M,
    category: String,
}

// Order by (time, seq) — BinaryHeap is a max-heap, so wrap in Reverse at the
// call sites.
impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// The discrete-event network. Generic over the payload type `M`.
#[derive(Debug, Clone)]
pub struct Network<M> {
    config: NetworkConfig,
    topology: Topology,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<InFlight<M>>>,
    stats: TrafficStats,
}

impl<M> Network<M> {
    /// Create a network over a topology.
    pub fn new(topology: Topology, config: NetworkConfig) -> Self {
        Network {
            config,
            topology,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            stats: TrafficStats::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology (shared with the protocol layer).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the topology (for link failures, mobility updates).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// True when no messages are in flight.
    pub fn idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Latency between two nodes: the direct link's latency when one exists,
    /// the configured default otherwise.
    fn latency(&self, from: &str, to: &str) -> SimTime {
        let ms = self
            .topology
            .link(from, to)
            .map(|l| l.latency_ms)
            .unwrap_or(self.config.default_latency_ms);
        SimTime::from_millis(ms)
    }

    /// Send a message of `payload_bytes` payload from `from` to `to`,
    /// charging it to `category`. Returns the scheduled delivery time.
    pub fn send(
        &mut self,
        from: impl Into<NodeId>,
        to: impl Into<NodeId>,
        payload: M,
        payload_bytes: usize,
        category: &str,
    ) -> SimTime {
        self.send_batch(from, to, payload, payload_bytes, 1, category)
    }

    /// Send one message carrying `records` coalesced records (a delta
    /// batch). The payload is priced as the caller computed it — dictionary
    /// header plus `records` fixed-width bodies — and the per-message
    /// framing header is charged **once** for the whole batch; that
    /// amortization is exactly what batched delta shipping saves over
    /// one-message-per-tuple. Returns the scheduled delivery time.
    pub fn send_batch(
        &mut self,
        from: impl Into<NodeId>,
        to: impl Into<NodeId>,
        payload: M,
        payload_bytes: usize,
        records: usize,
        category: &str,
    ) -> SimTime {
        let from = from.into();
        let to = to.into();
        let deliver_at = self.now + self.latency(&from, &to);
        self.seq += 1;
        self.stats.record_batch(
            &from,
            &to,
            category,
            payload_bytes + self.config.header_bytes,
            records,
        );
        self.queue.push(Reverse(InFlight {
            deliver_at,
            seq: self.seq,
            from,
            to,
            payload,
            category: category.to_string(),
        }));
        deliver_at
    }

    /// Deliver a message to a node immediately (zero latency, no traffic
    /// charge). Used for a node's messages to itself.
    pub fn loopback(&mut self, node: impl Into<NodeId>, payload: M, category: &str) {
        let node = node.into();
        self.seq += 1;
        self.queue.push(Reverse(InFlight {
            deliver_at: self.now,
            seq: self.seq,
            from: node,
            to: node,
            payload,
            category: category.to_string(),
        }));
    }

    /// Advance simulated time to the next pending delivery and return every
    /// message delivered at that instant (in send order). Returns an empty
    /// vector when the network is idle.
    pub fn advance(&mut self) -> Vec<Delivered<M>> {
        let Some(Reverse(first)) = self.queue.peek() else {
            return Vec::new();
        };
        let t = first.deliver_at;
        self.now = t;
        let mut out = Vec::new();
        while let Some(Reverse(m)) = self.queue.peek() {
            if m.deliver_at != t {
                break;
            }
            let Reverse(m) = self.queue.pop().expect("peeked");
            out.push(Delivered {
                at: m.deliver_at,
                from: m.from,
                to: m.to,
                payload: m.payload,
                category: m.category,
            });
        }
        out
    }

    /// Advance the clock to `t` without delivering anything (used to model
    /// idle periods between externally scheduled events).
    pub fn advance_time_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn network() -> Network<String> {
        let mut topo = Topology::line(3);
        // Give the n1-n2 link a bigger latency than n2-n3.
        topo.add_bidi("n1", "n2", 1);
        if let Some(l) = topo.remove_link("n1", "n2") {
            let mut l = l;
            l.latency_ms = 10;
            topo.add_link(l);
        }
        Network::new(topo, NetworkConfig::default())
    }

    #[test]
    fn messages_are_delivered_in_time_order() {
        let mut net = network();
        net.send("n1", "n2", "slow".to_string(), 10, "test"); // 10 ms
        net.send("n2", "n3", "fast".to_string(), 10, "test"); // 1 ms
        let batch1 = net.advance();
        assert_eq!(batch1.len(), 1);
        assert_eq!(batch1[0].payload, "fast");
        assert_eq!(net.now(), SimTime::from_millis(1));
        let batch2 = net.advance();
        assert_eq!(batch2[0].payload, "slow");
        assert_eq!(net.now(), SimTime::from_millis(10));
        assert!(net.idle());
        assert!(net.advance().is_empty());
    }

    #[test]
    fn same_instant_messages_are_batched_in_send_order() {
        let mut net = network();
        net.send("n2", "n3", "a".to_string(), 1, "test");
        net.send("n2", "n3", "b".to_string(), 1, "test");
        let batch = net.advance();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].payload, "a");
        assert_eq!(batch[1].payload, "b");
    }

    #[test]
    fn unknown_pairs_use_default_latency_and_traffic_is_counted() {
        let mut net = network();
        net.send("n1", "n3", "x".to_string(), 100, "prov-query");
        let batch = net.advance();
        assert_eq!(batch.len(), 1);
        assert_eq!(net.now(), SimTime::from_millis(5));
        assert_eq!(net.stats().messages, 1);
        assert_eq!(
            net.stats().category_bytes("prov-query"),
            100 + NetworkConfig::default().header_bytes as u64
        );
    }

    #[test]
    fn loopback_is_free_and_immediate() {
        let mut net = network();
        net.loopback("n1", "self".to_string(), "internal");
        let batch = net.advance();
        assert_eq!(batch.len(), 1);
        assert_eq!(net.now(), SimTime::ZERO);
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn advance_time_never_goes_backwards() {
        let mut net = network();
        net.advance_time_to(SimTime::from_secs(5));
        assert_eq!(net.now(), SimTime::from_secs(5));
        net.advance_time_to(SimTime::from_secs(1));
        assert_eq!(net.now(), SimTime::from_secs(5));
    }
}
