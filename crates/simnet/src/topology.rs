//! Network topologies: nodes, links and standard generators.
//!
//! The demonstration scenarios of the paper use small declarative-network
//! topologies (MINCOST, path-vector, DSR) and AS-level topologies for the BGP
//! use case. This module provides the node/link model plus deterministic
//! generators for the shapes used by the examples and benchmarks: line, ring,
//! star, grid, ladder and seeded random (Erdős–Rényi-style) graphs, plus the
//! internet-scale families of the scenario suite — data-center fat-trees,
//! AS-level preferential-attachment graphs with tiered link costs, and
//! Watts–Strogatz small-world meshes. Every seeded generator is a pure
//! function of its parameters and a `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A directed link between two named nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source node name.
    pub from: String,
    /// Destination node name.
    pub to: String,
    /// Protocol-visible link cost (used as the `link(@S,D,C)` cost attribute).
    pub cost: i64,
    /// Propagation latency in milliseconds.
    pub latency_ms: u64,
}

impl Link {
    /// Create a link with default latency (1 ms).
    pub fn new(from: impl Into<String>, to: impl Into<String>, cost: i64) -> Self {
        Link {
            from: from.into(),
            to: to.into(),
            cost,
            latency_ms: 1,
        }
    }
}

/// A topology change event, used to drive the "network state is incrementally
/// recomputed as the underlying topology changes" demonstrations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyEvent {
    /// A (bidirectional) link comes up.
    LinkUp(Link),
    /// The link between two nodes fails (both directions).
    LinkDown {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
    },
    /// The cost of an existing link changes (both directions).
    CostChange {
        /// One endpoint.
        a: String,
        /// The other endpoint.
        b: String,
        /// New cost.
        cost: i64,
    },
}

/// A set of nodes and directed links.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: BTreeSet<String>,
    /// (from, to) -> link. Serialized as a plain list of links so snapshots
    /// can be stored as JSON (JSON maps need string keys).
    #[serde(
        serialize_with = "serialize_links",
        deserialize_with = "deserialize_links"
    )]
    links: BTreeMap<(String, String), Link>,
}

fn serialize_links<S>(
    links: &BTreeMap<(String, String), Link>,
    serializer: S,
) -> Result<S::Ok, S::Error>
where
    S: serde::Serializer,
{
    serializer.collect_seq(links.values())
}

fn deserialize_links<'de, D>(deserializer: D) -> Result<BTreeMap<(String, String), Link>, D::Error>
where
    D: serde::Deserializer<'de>,
{
    let links = Vec::<Link>::deserialize(deserializer)?;
    Ok(links
        .into_iter()
        .map(|l| ((l.from.clone(), l.to.clone()), l))
        .collect())
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node (idempotent).
    pub fn add_node(&mut self, name: impl Into<String>) {
        self.nodes.insert(name.into());
    }

    /// Add a directed link (endpoints are added as nodes automatically).
    pub fn add_link(&mut self, link: Link) {
        self.nodes.insert(link.from.clone());
        self.nodes.insert(link.to.clone());
        self.links
            .insert((link.from.clone(), link.to.clone()), link);
    }

    /// Add a bidirectional link with equal cost/latency in both directions.
    pub fn add_bidi(&mut self, a: &str, b: &str, cost: i64) {
        self.add_link(Link::new(a, b, cost));
        self.add_link(Link::new(b, a, cost));
    }

    /// Remove the directed link `from -> to`.
    pub fn remove_link(&mut self, from: &str, to: &str) -> Option<Link> {
        self.links.remove(&(from.to_string(), to.to_string()))
    }

    /// Remove both directions between `a` and `b`.
    pub fn remove_bidi(&mut self, a: &str, b: &str) {
        self.remove_link(a, b);
        self.remove_link(b, a);
    }

    /// Approximate upload cost of shipping the topology inside a snapshot:
    /// a 4-byte interned id per node plus, per directed link, two ids, the
    /// cost and the latency. Node/link *names* are not charged here — they
    /// travel once in the snapshot's dictionary (see `nt_intern`), like every
    /// other identifier on the wire.
    pub fn wire_size(&self) -> usize {
        self.nodes.len() * 4 + self.links.len() * (4 + 4 + 8 + 8)
    }

    /// Node names in deterministic order.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Directed links in deterministic order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.values()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Look up a directed link.
    pub fn link(&self, from: &str, to: &str) -> Option<&Link> {
        self.links.get(&(from.to_string(), to.to_string()))
    }

    /// True when the directed link exists.
    pub fn has_link(&self, from: &str, to: &str) -> bool {
        self.link(from, to).is_some()
    }

    /// Neighbours reachable from `node` over outgoing links.
    pub fn neighbors(&self, node: &str) -> Vec<&Link> {
        self.neighbors_iter(node).collect()
    }

    /// Iterate over `node`'s outgoing links without allocating.
    ///
    /// The link map is keyed by `(from, to)`, so all of a node's outgoing
    /// links are contiguous: a range scan costs O(log E + degree) instead of
    /// the O(E) full scan — the difference between quadratic and linear
    /// topology construction at 10^4 nodes.
    pub fn neighbors_iter<'a>(&'a self, node: &str) -> impl Iterator<Item = &'a Link> {
        self.links
            .range((node.to_string(), String::new())..)
            .take_while({
                let node = node.to_string();
                move |((from, _), _)| *from == node
            })
            .map(|(_, l)| l)
    }

    /// Out-degree of `node`.
    pub fn degree(&self, node: &str) -> usize {
        self.neighbors_iter(node).count()
    }

    /// Apply a topology event, returning the links that were added and
    /// removed (useful for feeding deltas to the engines).
    pub fn apply(&mut self, event: &TopologyEvent) -> (Vec<Link>, Vec<Link>) {
        let mut added = Vec::new();
        let mut removed = Vec::new();
        match event {
            TopologyEvent::LinkUp(link) => {
                let rev = Link {
                    from: link.to.clone(),
                    to: link.from.clone(),
                    ..link.clone()
                };
                for l in [link.clone(), rev] {
                    if self.link(&l.from, &l.to) != Some(&l) {
                        if let Some(old) = self.remove_link(&l.from, &l.to) {
                            removed.push(old);
                        }
                        self.add_link(l.clone());
                        added.push(l);
                    }
                }
            }
            TopologyEvent::LinkDown { a, b } => {
                if let Some(l) = self.remove_link(a, b) {
                    removed.push(l);
                }
                if let Some(l) = self.remove_link(b, a) {
                    removed.push(l);
                }
            }
            TopologyEvent::CostChange { a, b, cost } => {
                for (from, to) in [(a.clone(), b.clone()), (b.clone(), a.clone())] {
                    if let Some(old) = self.remove_link(&from, &to) {
                        removed.push(old.clone());
                        let new = Link { cost: *cost, ..old };
                        self.add_link(new.clone());
                        added.push(new);
                    }
                }
            }
        }
        (added, removed)
    }

    // ------------------------------------------------------------------
    // generators
    // ------------------------------------------------------------------

    fn node_name(i: usize) -> String {
        format!("n{}", i + 1)
    }

    /// A line `n1 - n2 - ... - nN` with unit costs.
    pub fn line(n: usize) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(Self::node_name(i));
        }
        for i in 0..n.saturating_sub(1) {
            t.add_bidi(&Self::node_name(i), &Self::node_name(i + 1), 1);
        }
        t
    }

    /// A ring of `n` nodes with unit costs.
    pub fn ring(n: usize) -> Topology {
        let mut t = Self::line(n);
        if n > 2 {
            t.add_bidi(&Self::node_name(n - 1), &Self::node_name(0), 1);
        }
        t
    }

    /// A star: node `n1` in the middle, spokes to everyone else.
    pub fn star(n: usize) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(Self::node_name(i));
        }
        for i in 1..n {
            t.add_bidi(&Self::node_name(0), &Self::node_name(i), 1);
        }
        t
    }

    /// A `rows x cols` grid with unit costs.
    pub fn grid(rows: usize, cols: usize) -> Topology {
        let mut t = Topology::new();
        let name = |r: usize, c: usize| format!("n{}", r * cols + c + 1);
        for r in 0..rows {
            for c in 0..cols {
                t.add_node(name(r, c));
                if c + 1 < cols {
                    t.add_bidi(&name(r, c), &name(r, c + 1), 1);
                }
                if r + 1 < rows {
                    t.add_bidi(&name(r, c), &name(r + 1, c), 1);
                }
            }
        }
        t
    }

    /// A ladder: two parallel lines of length `n` with rungs — the shape used
    /// in the MINCOST screenshots of the paper (multiple alternative paths).
    pub fn ladder(n: usize) -> Topology {
        Self::grid(2, n)
    }

    /// A connected random graph: a random spanning backbone plus extra edges
    /// added with probability `extra_p`, costs drawn uniformly from
    /// `1..=max_cost`. Deterministic for a given seed.
    pub fn random(n: usize, extra_p: f64, max_cost: i64, seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(Self::node_name(i));
        }
        // Spanning backbone: attach node i to a random earlier node.
        for i in 1..n {
            let j = rng.gen_range(0..i);
            let cost = rng.gen_range(1..=max_cost.max(1));
            t.add_bidi(&Self::node_name(i), &Self::node_name(j), cost);
        }
        // Extra edges.
        for i in 0..n {
            for j in (i + 1)..n {
                if !t.has_link(&Self::node_name(i), &Self::node_name(j))
                    && rng.gen_bool(extra_p.clamp(0.0, 1.0))
                {
                    let cost = rng.gen_range(1..=max_cost.max(1));
                    t.add_bidi(&Self::node_name(i), &Self::node_name(j), cost);
                }
            }
        }
        t
    }

    /// A `k`-ary data-center fat-tree (`k` even): `(k/2)^2` core switches,
    /// `k` pods of `k/2` aggregation plus `k/2` edge switches, and `k/2`
    /// hosts per edge switch — `5k^2/4 + k^3/4` nodes and `3k^3/4`
    /// bidirectional links. Aggregation switch `a` of every pod uplinks to
    /// cores `a*(k/2)..(a+1)*(k/2)`; each pod's edge and aggregation layers
    /// are fully bipartite. Host links have unit cost; switch-to-switch
    /// costs are drawn from the seed, so the whole topology is a pure
    /// function of `(k, seed)`.
    pub fn fat_tree(k: usize, seed: u64) -> Topology {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat_tree requires an even k >= 2"
        );
        let half = k / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Topology::new();
        let core = |i: usize| format!("c{}", i + 1);
        let agg = |p: usize, a: usize| format!("p{}a{}", p + 1, a + 1);
        let edge = |p: usize, e: usize| format!("p{}e{}", p + 1, e + 1);
        let host = |p: usize, e: usize, h: usize| format!("p{}e{}h{}", p + 1, e + 1, h + 1);
        for i in 0..half * half {
            t.add_node(core(i));
        }
        for p in 0..k {
            for a in 0..half {
                for j in 0..half {
                    t.add_bidi(&agg(p, a), &core(a * half + j), rng.gen_range(1..=3));
                }
                for e in 0..half {
                    t.add_bidi(&edge(p, e), &agg(p, a), rng.gen_range(1..=2));
                }
            }
            for e in 0..half {
                for h in 0..half {
                    t.add_bidi(&host(p, e, h), &edge(p, e), 1);
                }
            }
        }
        t
    }

    /// An AS-level internet-like graph: `n` nodes grown by preferential
    /// attachment (each newcomer links to `m` distinct existing nodes, chosen
    /// proportionally to degree), then split into tiers by final degree —
    /// roughly 1% tier-1 backbone, 10% tier-2 transit, the rest stubs — with
    /// tiered link costs: backbone peering is cheapest, stub tails most
    /// expensive. Deterministic for a given `(n, m, seed)`.
    pub fn internet_as(n: usize, m: usize, seed: u64) -> Topology {
        assert!(m >= 1 && n > m, "internet_as requires n > m >= 1");
        let mut rng = StdRng::seed_from_u64(seed);
        // Grow the edge set by preferential attachment. `endpoints` lists one
        // entry per edge endpoint, so sampling it uniformly is
        // degree-proportional sampling.
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut endpoints: Vec<usize> = Vec::new();
        let add_edge = |edges: &mut BTreeSet<(usize, usize)>,
                        endpoints: &mut Vec<usize>,
                        u: usize,
                        v: usize| {
            let key = (u.min(v), u.max(v));
            if edges.insert(key) {
                endpoints.push(u);
                endpoints.push(v);
            }
        };
        // Seed clique over the first m+1 nodes.
        for u in 0..=m {
            for v in (u + 1)..=m {
                add_edge(&mut edges, &mut endpoints, u, v);
            }
        }
        for i in (m + 1)..n {
            let mut targets = BTreeSet::new();
            let mut attempts = 0;
            while targets.len() < m {
                let candidate = if attempts < 8 * m {
                    endpoints[rng.gen_range(0..endpoints.len())]
                } else {
                    rng.gen_range(0..i)
                };
                attempts += 1;
                targets.insert(candidate);
            }
            for v in targets {
                add_edge(&mut edges, &mut endpoints, i, v);
            }
        }
        // Tier nodes by final degree: highest-degree nodes form the backbone.
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut by_degree: Vec<usize> = (0..n).collect();
        by_degree.sort_by_key(|&i| (std::cmp::Reverse(degree[i]), i));
        let tier1 = (n / 100).max(2);
        let tier2 = (n / 10).max(8);
        let mut tier = vec![3u8; n];
        for (rank, &i) in by_degree.iter().enumerate() {
            tier[i] = if rank < tier1 {
                1
            } else if rank < tier1 + tier2 {
                2
            } else {
                3
            };
        }
        let cost = |a: u8, b: u8| match (a.min(b), a.max(b)) {
            (1, 1) => 1,
            (1, 2) => 2,
            (2, 2) => 3,
            (2, 3) => 4,
            (1, 3) => 4,
            _ => 5,
        };
        let name = |i: usize| format!("as{}", i + 1);
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(name(i));
        }
        for &(u, v) in &edges {
            t.add_bidi(&name(u), &name(v), cost(tier[u], tier[v]));
        }
        t
    }

    /// A Watts–Strogatz small-world mesh: a ring lattice where each node
    /// links to its `k/2` clockwise neighbours (`k` even), then each lattice
    /// edge's far endpoint is rewired to a uniform random node with
    /// probability `beta_percent`/100. Exactly `n*k/2` bidirectional edges;
    /// every node keeps degree >= k/2. Link costs are seeded jitter in
    /// `1..=3`. Deterministic for a given `(n, k, beta_percent, seed)`.
    pub fn small_world(n: usize, k: usize, beta_percent: u32, seed: u64) -> Topology {
        assert!(
            k >= 2 && k.is_multiple_of(2) && n > k,
            "small_world requires n > k >= 2, k even"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let beta = f64::from(beta_percent.min(100)) / 100.0;
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for i in 0..n {
            for j in 1..=k / 2 {
                let v = (i + j) % n;
                edges.insert((i.min(v), i.max(v)));
            }
        }
        for i in 0..n {
            for j in 1..=k / 2 {
                let v = (i + j) % n;
                let key = (i.min(v), i.max(v));
                if !rng.gen_bool(beta) {
                    continue;
                }
                // Rewire i->v to i->t; bounded retries keep this total.
                for _ in 0..32 {
                    let candidate = rng.gen_range(0..n);
                    let new_key = (i.min(candidate), i.max(candidate));
                    if candidate != i && !edges.contains(&new_key) {
                        edges.remove(&key);
                        edges.insert(new_key);
                        break;
                    }
                }
            }
        }
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(Self::node_name(i));
        }
        for &(u, v) in &edges {
            t.add_bidi(
                &Self::node_name(u),
                &Self::node_name(v),
                rng.gen_range(1..=3),
            );
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_ring_shapes() {
        let line = Topology::line(4);
        assert_eq!(line.node_count(), 4);
        assert_eq!(line.link_count(), 6); // 3 bidi links
        let ring = Topology::ring(4);
        assert_eq!(ring.link_count(), 8);
        assert!(ring.has_link("n4", "n1"));
    }

    #[test]
    fn grid_and_ladder() {
        let grid = Topology::grid(2, 3);
        assert_eq!(grid.node_count(), 6);
        // 2*(cols-1)*rows horizontal + 2*(rows-1)*cols vertical = 8 + 6 = 14
        assert_eq!(grid.link_count(), 14);
        assert_eq!(Topology::ladder(3), grid);
    }

    #[test]
    fn star_has_hub() {
        let star = Topology::star(5);
        assert_eq!(star.neighbors("n1").len(), 4);
        assert_eq!(star.neighbors("n3").len(), 1);
    }

    #[test]
    fn random_is_deterministic_and_connected() {
        let a = Topology::random(12, 0.1, 5, 42);
        let b = Topology::random(12, 0.1, 5, 42);
        assert_eq!(a, b);
        let c = Topology::random(12, 0.1, 5, 43);
        assert_ne!(a, c);
        // Connectivity: BFS from n1 reaches every node (backbone guarantees it).
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec!["n1".to_string()];
        while let Some(n) = stack.pop() {
            if seen.insert(n.clone()) {
                for l in a.neighbors(&n) {
                    stack.push(l.to.clone());
                }
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn apply_link_events() {
        let mut t = Topology::line(3);
        let (added, removed) = t.apply(&TopologyEvent::LinkDown {
            a: "n1".into(),
            b: "n2".into(),
        });
        assert_eq!(added.len(), 0);
        assert_eq!(removed.len(), 2);
        assert!(!t.has_link("n1", "n2"));

        let (added, _) = t.apply(&TopologyEvent::LinkUp(Link::new("n1", "n3", 7)));
        assert_eq!(added.len(), 2);
        assert_eq!(t.link("n3", "n1").unwrap().cost, 7);

        let (added, removed) = t.apply(&TopologyEvent::CostChange {
            a: "n2".into(),
            b: "n3".into(),
            cost: 9,
        });
        assert_eq!(added.len(), 2);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.link("n2", "n3").unwrap().cost, 9);
    }

    #[test]
    fn cost_change_on_missing_link_is_a_noop() {
        let mut t = Topology::line(2);
        let (added, removed) = t.apply(&TopologyEvent::CostChange {
            a: "n1".into(),
            b: "n9".into(),
            cost: 3,
        });
        assert!(added.is_empty() && removed.is_empty());
    }
}
