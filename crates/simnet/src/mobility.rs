//! Mobility models for the mobile-network (DSR) use case.
//!
//! The paper demonstrates NetTrails "in a variety of declarative networks
//! running in different environments (e.g. static vs mobile network)". The
//! mobile environment is modelled with the classic **random waypoint** model:
//! each node picks a random destination in a rectangular field and moves
//! toward it at a random speed; when it arrives it picks a new waypoint.
//! Nodes within radio `range` of each other share a (bidirectional) link.
//! Sampling the link set at two instants and diffing the results yields the
//! link up/down events that drive incremental recomputation of DSR routes and
//! of their provenance.

use crate::topology::{Link, Topology};
/// `(new_links, lost_links)` bidirectional pairs reported by
/// [`RandomWaypoint::link_changes`].
pub type LinkChanges = (Vec<(String, String)>, Vec<(String, String)>);

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A position in the simulation field (meters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Trait implemented by mobility models: given a time, where is every node and
/// which links exist?
pub trait MobilityModel {
    /// Node names managed by the model.
    fn nodes(&self) -> Vec<String>;
    /// Position of a node at time `t_secs`.
    fn position(&self, node: &str, t_secs: f64) -> Option<Point>;
    /// The radio link set at time `t_secs` as a [`Topology`].
    fn topology_at(&self, t_secs: f64) -> Topology;
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeMotion {
    name: String,
    /// Waypoint schedule: (start_time, start_pos, end_time, end_pos) legs,
    /// precomputed far enough into the future for the simulation horizon.
    legs: Vec<(f64, Point, f64, Point)>,
}

/// Random-waypoint mobility over a rectangular field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomWaypoint {
    field: (f64, f64),
    range: f64,
    link_cost: i64,
    motions: Vec<NodeMotion>,
}

impl RandomWaypoint {
    /// Create a model for `n` nodes on a `width x height` field, radio range
    /// `range` meters, speeds uniform in `[min_speed, max_speed]` m/s, with
    /// waypoints precomputed up to `horizon_secs`. Deterministic per seed.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        width: f64,
        height: f64,
        range: f64,
        min_speed: f64,
        max_speed: f64,
        horizon_secs: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut motions = Vec::with_capacity(n);
        for i in 0..n {
            let name = format!("n{}", i + 1);
            let mut t = 0.0;
            let mut pos = Point {
                x: rng.gen_range(0.0..width),
                y: rng.gen_range(0.0..height),
            };
            let mut legs = Vec::new();
            while t < horizon_secs {
                let dest = Point {
                    x: rng.gen_range(0.0..width),
                    y: rng.gen_range(0.0..height),
                };
                let speed = rng.gen_range(min_speed..=max_speed).max(0.1);
                let duration = (pos.distance(&dest) / speed).max(0.001);
                legs.push((t, pos, t + duration, dest));
                t += duration;
                pos = dest;
            }
            motions.push(NodeMotion { name, legs });
        }
        RandomWaypoint {
            field: (width, height),
            range,
            link_cost: 1,
            motions,
        }
    }

    /// A mobility mesh sized for the scenario suite: `n` nodes on a square
    /// field scaled so the expected radio degree stays ~8 regardless of `n`
    /// (area = n * pi * range^2 / 8), radio range 100 m, pedestrian-to-slow-
    /// vehicle speeds (1-6 m/s, so per-second link flips stay a few percent
    /// of the link set), waypoints precomputed out to `horizon_secs`.
    /// Deterministic per seed.
    pub fn mesh(n: usize, horizon_secs: f64, seed: u64) -> Self {
        let range = 100.0;
        let side = (n as f64 * std::f64::consts::PI * range * range / 8.0).sqrt();
        RandomWaypoint::new(n, side, side, range, 1.0, 6.0, horizon_secs, seed)
    }

    /// The field dimensions.
    pub fn field(&self) -> (f64, f64) {
        self.field
    }

    /// The radio range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Link up/down events between two sample instants, as
    /// `(new_links, lost_links)` of *bidirectional* pairs (each pair reported
    /// once, `a < b`). Diffs the two link sets directly — O(E log E), not
    /// O(n^2) over node pairs — so churn sampling stays cheap at scenario
    /// scale.
    pub fn link_changes(&self, t0: f64, t1: f64) -> LinkChanges {
        let before = self.topology_at(t0);
        let after = self.topology_at(t1);
        let mut up = Vec::new();
        let mut down = Vec::new();
        for l in after.links().filter(|l| l.from < l.to) {
            if !before.has_link(&l.from, &l.to) {
                up.push((l.from.clone(), l.to.clone()));
            }
        }
        for l in before.links().filter(|l| l.from < l.to) {
            if !after.has_link(&l.from, &l.to) {
                down.push((l.from.clone(), l.to.clone()));
            }
        }
        (up, down)
    }

    /// Leg interpolation for one node's motion at `t_secs`.
    fn position_of(motion: &NodeMotion, t_secs: f64) -> Option<Point> {
        let leg = motion
            .legs
            .iter()
            .find(|(start, _, end, _)| t_secs >= *start && t_secs < *end)
            .or_else(|| motion.legs.last())?;
        let (start, from, end, to) = leg;
        let frac = if t_secs <= *start {
            0.0
        } else if t_secs >= *end {
            1.0
        } else {
            (t_secs - start) / (end - start)
        };
        Some(Point {
            x: from.x + (to.x - from.x) * frac,
            y: from.y + (to.y - from.y) * frac,
        })
    }
}

impl MobilityModel for RandomWaypoint {
    fn nodes(&self) -> Vec<String> {
        self.motions.iter().map(|m| m.name.clone()).collect()
    }

    fn position(&self, node: &str, t_secs: f64) -> Option<Point> {
        let motion = self.motions.iter().find(|m| m.name == node)?;
        Self::position_of(motion, t_secs)
    }

    /// The radio link set at `t_secs`. Positions are computed once per node
    /// and bucketed on a grid of `range`-sized cells, so only nodes in
    /// adjacent cells are distance-tested: ~O(n + links) instead of the
    /// all-pairs O(n^2), which is what keeps 10^3-node mesh scenarios (and
    /// their per-second churn sampling) affordable. The resulting link set is
    /// identical to the all-pairs scan.
    fn topology_at(&self, t_secs: f64) -> Topology {
        let mut topo = Topology::new();
        let mut points = Vec::with_capacity(self.motions.len());
        for m in &self.motions {
            topo.add_node(m.name.clone());
            points.push(Self::position_of(m, t_secs).expect("motion has legs"));
        }
        let cell = self.range.max(1e-9);
        let cell_of = |p: &Point| ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        let mut grid: std::collections::BTreeMap<(i64, i64), Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, p) in points.iter().enumerate() {
            grid.entry(cell_of(p)).or_default().push(i);
        }
        for (i, pa) in points.iter().enumerate() {
            let (cx, cy) = cell_of(pa);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(bucket) = grid.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in bucket {
                        if j > i && pa.distance(&points[j]) <= self.range {
                            let (a, b) = (&self.motions[i].name, &self.motions[j].name);
                            topo.add_link(Link::new(a.clone(), b.clone(), self.link_cost));
                            topo.add_link(Link::new(b.clone(), a.clone(), self.link_cost));
                        }
                    }
                }
            }
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RandomWaypoint {
        RandomWaypoint::new(6, 300.0, 300.0, 120.0, 1.0, 5.0, 200.0, 7)
    }

    #[test]
    fn positions_stay_inside_the_field_and_are_deterministic() {
        let m1 = model();
        let m2 = model();
        for node in m1.nodes() {
            for t in [0.0, 10.0, 55.5, 199.0] {
                let p1 = m1.position(&node, t).unwrap();
                let p2 = m2.position(&node, t).unwrap();
                assert_eq!(p1, p2);
                assert!(p1.x >= 0.0 && p1.x <= 300.0);
                assert!(p1.y >= 0.0 && p1.y <= 300.0);
            }
        }
    }

    #[test]
    fn positions_move_over_time() {
        let m = model();
        let node = m.nodes()[0].clone();
        let p0 = m.position(&node, 0.0).unwrap();
        let p1 = m.position(&node, 100.0).unwrap();
        assert!(p0.distance(&p1) > 1e-6, "node should have moved");
    }

    #[test]
    fn topology_links_respect_range() {
        let m = model();
        let topo = m.topology_at(10.0);
        for l in topo.links() {
            let pa = m.position(&l.from, 10.0).unwrap();
            let pb = m.position(&l.to, 10.0).unwrap();
            assert!(pa.distance(&pb) <= m.range() + 1e-9);
        }
        // Symmetric links.
        for l in topo.links() {
            assert!(topo.has_link(&l.to, &l.from));
        }
    }

    #[test]
    fn grid_link_set_matches_the_all_pairs_scan() {
        let m = RandomWaypoint::mesh(100, 30.0, 4);
        for t in [0.0, 12.5] {
            let topo = m.topology_at(t);
            let nodes = m.nodes();
            for (i, a) in nodes.iter().enumerate() {
                for b in nodes.iter().skip(i + 1) {
                    let close = m
                        .position(a, t)
                        .unwrap()
                        .distance(&m.position(b, t).unwrap())
                        <= m.range();
                    assert_eq!(topo.has_link(a, b), close, "{a}-{b} at t={t}");
                }
            }
        }
    }

    #[test]
    fn link_changes_report_ups_and_downs() {
        let m = model();
        // Over a long interval in a mobile network *something* changes.
        let (up, down) = m.link_changes(0.0, 150.0);
        assert!(
            !up.is_empty() || !down.is_empty(),
            "expected at least one link change over 150 s"
        );
        // And a zero-length interval changes nothing.
        let (up, down) = m.link_changes(42.0, 42.0);
        assert!(up.is_empty() && down.is_empty());
    }
}
