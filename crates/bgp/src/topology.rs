//! AS-level topologies with business relationships.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use crate::speaker::Relation;

/// An AS-level topology: ASes plus customer/provider/peer relationships.
///
/// Relationships are stored once per unordered pair, from the perspective of
/// the first AS: `Relation::Customer` in `(a, b)` means *b is a customer of
/// a* (a provides transit to b).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AsTopology {
    ases: BTreeSet<String>,
    /// (a, b) -> relationship of b as seen from a (Customer / Peer /
    /// Provider). Both orientations are stored for easy lookup.
    relations: BTreeMap<(String, String), Relation>,
}

impl AsTopology {
    /// Create an empty topology.
    pub fn new() -> Self {
        AsTopology::default()
    }

    /// Add an AS (idempotent).
    pub fn add_as(&mut self, name: impl Into<String>) {
        self.ases.insert(name.into());
    }

    /// Declare `customer` to be a customer of `provider`.
    pub fn add_customer(&mut self, provider: &str, customer: &str) {
        self.add_as(provider);
        self.add_as(customer);
        self.relations.insert(
            (provider.to_string(), customer.to_string()),
            Relation::Customer,
        );
        self.relations.insert(
            (customer.to_string(), provider.to_string()),
            Relation::Provider,
        );
    }

    /// Declare a settlement-free peering between two ASes.
    pub fn add_peering(&mut self, a: &str, b: &str) {
        self.add_as(a);
        self.add_as(b);
        self.relations
            .insert((a.to_string(), b.to_string()), Relation::Peer);
        self.relations
            .insert((b.to_string(), a.to_string()), Relation::Peer);
    }

    /// All AS names in deterministic order.
    pub fn ases(&self) -> impl Iterator<Item = &str> {
        self.ases.iter().map(String::as_str)
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.ases.len()
    }

    /// True when the topology has no ASes.
    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// The relationship of `neighbor` as seen from `from` (None when they are
    /// not adjacent).
    pub fn relation(&self, from: &str, neighbor: &str) -> Option<Relation> {
        self.relations
            .get(&(from.to_string(), neighbor.to_string()))
            .copied()
    }

    /// All neighbours of an AS with their relationship.
    pub fn neighbors(&self, from: &str) -> Vec<(String, Relation)> {
        self.relations
            .iter()
            .filter(|((a, _), _)| a == from)
            .map(|((_, b), r)| (b.clone(), *r))
            .collect()
    }

    /// Number of adjacencies (unordered pairs).
    pub fn adjacency_count(&self) -> usize {
        self.relations.len() / 2
    }

    /// Generate the shape the paper demonstrates: `n_large` tier-1 ISPs in a
    /// full peering mesh, `n_medium` mid-size ISPs buying transit from 1–2
    /// tier-1s (and occasionally peering with each other), and `n_stub` edge
    /// ASes buying transit from 1–2 mid-size ISPs. Deterministic per seed.
    pub fn generate(n_large: usize, n_medium: usize, n_stub: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut topo = AsTopology::new();
        let large: Vec<String> = (0..n_large).map(|i| format!("AS{}", 100 + i)).collect();
        let medium: Vec<String> = (0..n_medium).map(|i| format!("AS{}", 200 + i)).collect();
        let stub: Vec<String> = (0..n_stub).map(|i| format!("AS{}", 1000 + i)).collect();

        for a in &large {
            topo.add_as(a.clone());
        }
        // Tier-1 full mesh.
        for i in 0..large.len() {
            for j in (i + 1)..large.len() {
                topo.add_peering(&large[i], &large[j]);
            }
        }
        // Mid-size ISPs.
        for m in &medium {
            topo.add_as(m.clone());
            if large.is_empty() {
                continue;
            }
            let providers = 1 + usize::from(rng.gen_bool(0.5) && large.len() > 1);
            let mut picked = BTreeSet::new();
            while picked.len() < providers {
                picked.insert(rng.gen_range(0..large.len()));
            }
            for p in picked {
                topo.add_customer(&large[p], m);
            }
        }
        // Occasional peering between mid-size ISPs.
        for i in 0..medium.len() {
            for j in (i + 1)..medium.len() {
                if rng.gen_bool(0.15) {
                    topo.add_peering(&medium[i], &medium[j]);
                }
            }
        }
        // Stub ASes.
        let upstream_pool: Vec<String> = if medium.is_empty() {
            large.clone()
        } else {
            medium.clone()
        };
        for s in &stub {
            topo.add_as(s.clone());
            if upstream_pool.is_empty() {
                continue;
            }
            let providers = 1 + usize::from(rng.gen_bool(0.3) && upstream_pool.len() > 1);
            let mut picked = BTreeSet::new();
            while picked.len() < providers {
                picked.insert(rng.gen_range(0..upstream_pool.len()));
            }
            for p in picked {
                topo.add_customer(&upstream_pool[p], s);
            }
        }
        topo
    }

    /// Stub ASes (no customers of their own) — the typical trace origins.
    pub fn stub_ases(&self) -> Vec<String> {
        self.ases
            .iter()
            .filter(|a| {
                !self
                    .neighbors(a)
                    .iter()
                    .any(|(_, r)| *r == Relation::Customer)
            })
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_relationships_are_symmetric() {
        let mut t = AsTopology::new();
        t.add_customer("AS100", "AS200");
        t.add_peering("AS100", "AS101");
        assert_eq!(t.relation("AS100", "AS200"), Some(Relation::Customer));
        assert_eq!(t.relation("AS200", "AS100"), Some(Relation::Provider));
        assert_eq!(t.relation("AS100", "AS101"), Some(Relation::Peer));
        assert_eq!(t.relation("AS101", "AS100"), Some(Relation::Peer));
        assert_eq!(t.relation("AS200", "AS101"), None);
        assert_eq!(t.adjacency_count(), 2);
    }

    #[test]
    fn generated_topology_is_deterministic_and_connected_shape() {
        let a = AsTopology::generate(3, 5, 10, 7);
        let b = AsTopology::generate(3, 5, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 18);
        // Every stub has at least one provider.
        for s in a.stub_ases() {
            if s.starts_with("AS10") && s.len() > 5 {
                continue;
            }
            let has_provider = a
                .neighbors(&s)
                .iter()
                .any(|(_, r)| *r == Relation::Provider);
            // Tier-1 ASes have no providers but they are not "stubs" in the
            // customer sense unless they have no customers; skip them.
            if s.starts_with("AS1") && s.len() == 5 {
                assert!(has_provider, "stub {s} must have a provider");
            }
        }
        // Tier-1s form a full mesh: AS100-AS101, AS100-AS102, AS101-AS102.
        assert_eq!(a.relation("AS100", "AS101"), Some(Relation::Peer));
        assert_eq!(a.relation("AS101", "AS102"), Some(Relation::Peer));
    }

    #[test]
    fn neighbors_lists_every_adjacency() {
        let t = AsTopology::generate(2, 2, 2, 1);
        for a in t.ases() {
            for (n, r) in t.neighbors(a) {
                assert_eq!(t.relation(a, &n), Some(r));
            }
        }
    }
}
