//! BGP speakers: the "unmodified legacy application".
//!
//! Each AS runs one [`Speaker`]. Speakers exchange [`BgpMessage`]s
//! (announcements and withdrawals of prefixes with AS paths) and keep a RIB of
//! candidate routes per prefix. The decision process follows the Gao–Rexford
//! conventions: prefer routes learned from customers over peers over
//! providers, then shorter AS paths, then a deterministic tie-break; the
//! export policy only propagates customer routes (and own prefixes) to
//! everyone, and peer/provider routes to customers only.
//!
//! NetTrails treats this code as a **black box**: the platform only sees the
//! messages entering and leaving each speaker (via the [`crate::proxy`]),
//! exactly as the paper's proxy intercepts Quagga's BGP messages.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Business relationship of a neighbour, from the local AS's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Relation {
    /// The neighbour buys transit from us.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// We buy transit from the neighbour.
    Provider,
}

impl Relation {
    /// Gao–Rexford local preference: customers are preferred over peers over
    /// providers.
    pub fn preference(self) -> u8 {
        match self {
            Relation::Customer => 2,
            Relation::Peer => 1,
            Relation::Provider => 0,
        }
    }
}

/// A route to a prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Destination prefix (e.g. `10.1.0.0/16`).
    pub prefix: String,
    /// AS path, nearest AS first (the origin AS is last).
    pub as_path: Vec<String>,
    /// Neighbour the route was learned from; `None` for locally originated
    /// prefixes.
    pub learned_from: Option<String>,
    /// Relationship of that neighbour (customers preferred); `Customer` for
    /// locally originated prefixes so they always win.
    pub relation: Relation,
}

impl Route {
    /// Length of the AS path.
    pub fn path_len(&self) -> usize {
        self.as_path.len()
    }

    /// The origin AS of the route.
    pub fn origin(&self) -> Option<&str> {
        self.as_path.last().map(String::as_str)
    }
}

/// A BGP update message between two speakers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BgpMessage {
    /// Announce a path to a prefix.
    Announce {
        /// Destination prefix.
        prefix: String,
        /// AS path (sender first).
        as_path: Vec<String>,
    },
    /// Withdraw a previously announced prefix.
    Withdraw {
        /// Destination prefix.
        prefix: String,
    },
}

impl BgpMessage {
    /// The prefix the message refers to.
    pub fn prefix(&self) -> &str {
        match self {
            BgpMessage::Announce { prefix, .. } | BgpMessage::Withdraw { prefix } => prefix,
        }
    }
}

/// One AS's BGP speaker.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Speaker {
    /// This speaker's AS name.
    pub asn: String,
    /// Neighbours and their relationships.
    neighbors: BTreeMap<String, Relation>,
    /// Locally originated prefixes.
    originated: Vec<String>,
    /// Candidate routes: prefix -> neighbour -> route.
    rib: BTreeMap<String, BTreeMap<String, Route>>,
    /// Currently selected best route per prefix.
    best: BTreeMap<String, Route>,
}

/// A message to deliver to a neighbour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outgoing {
    /// Destination AS.
    pub to: String,
    /// The message.
    pub message: BgpMessage,
}

impl Speaker {
    /// Create a speaker for an AS with the given neighbours.
    pub fn new(asn: impl Into<String>, neighbors: BTreeMap<String, Relation>) -> Self {
        Speaker {
            asn: asn.into(),
            neighbors,
            ..Default::default()
        }
    }

    /// Neighbours and relationships.
    pub fn neighbors(&self) -> &BTreeMap<String, Relation> {
        &self.neighbors
    }

    /// The currently selected best route for a prefix.
    pub fn best_route(&self, prefix: &str) -> Option<&Route> {
        self.best.get(prefix)
    }

    /// All currently selected best routes (the FIB).
    pub fn fib(&self) -> &BTreeMap<String, Route> {
        &self.best
    }

    /// Candidate routes currently held for a prefix.
    pub fn candidates(&self, prefix: &str) -> Vec<&Route> {
        self.rib
            .get(prefix)
            .map(|m| m.values().collect())
            .unwrap_or_default()
    }

    /// Originate a prefix locally. Returns the announcements to send.
    pub fn originate(&mut self, prefix: &str) -> Vec<Outgoing> {
        if !self.originated.contains(&prefix.to_string()) {
            self.originated.push(prefix.to_string());
        }
        let route = Route {
            prefix: prefix.to_string(),
            as_path: vec![self.asn.clone()],
            learned_from: None,
            relation: Relation::Customer,
        };
        self.install_best(prefix, Some(route))
    }

    /// Withdraw a locally originated prefix. Returns the withdrawals to send.
    pub fn withdraw_origin(&mut self, prefix: &str) -> Vec<Outgoing> {
        self.originated.retain(|p| p != prefix);
        let best = self.select_best(prefix);
        self.install_best(prefix, best)
    }

    /// Process a message received from `from`. Returns the messages to send in
    /// response (the speaker's *output* routes).
    pub fn receive(&mut self, from: &str, message: &BgpMessage) -> Vec<Outgoing> {
        let Some(relation) = self.neighbors.get(from).copied() else {
            return Vec::new();
        };
        match message {
            BgpMessage::Announce { prefix, as_path } => {
                // AS-path loop detection: ignore routes containing ourselves.
                if as_path.contains(&self.asn) {
                    return Vec::new();
                }
                let route = Route {
                    prefix: prefix.clone(),
                    as_path: as_path.clone(),
                    learned_from: Some(from.to_string()),
                    relation,
                };
                self.rib
                    .entry(prefix.clone())
                    .or_default()
                    .insert(from.to_string(), route);
            }
            BgpMessage::Withdraw { prefix } => {
                if let Some(candidates) = self.rib.get_mut(prefix) {
                    candidates.remove(from);
                }
            }
        }
        let prefix = message.prefix().to_string();
        let best = self.select_best(&prefix);
        self.install_best(&prefix, best)
    }

    /// The decision process: local origination wins, then Gao–Rexford
    /// preference, then shortest AS path, then lowest neighbour name.
    fn select_best(&self, prefix: &str) -> Option<Route> {
        if self.originated.contains(&prefix.to_string()) {
            return Some(Route {
                prefix: prefix.to_string(),
                as_path: vec![self.asn.clone()],
                learned_from: None,
                relation: Relation::Customer,
            });
        }
        self.rib.get(prefix).and_then(|candidates| {
            candidates
                .values()
                .min_by(|a, b| {
                    b.relation
                        .preference()
                        .cmp(&a.relation.preference())
                        .then(a.path_len().cmp(&b.path_len()))
                        .then(a.learned_from.cmp(&b.learned_from))
                })
                .cloned()
        })
    }

    /// Install a new best route (or remove it) and compute the resulting
    /// export messages.
    fn install_best(&mut self, prefix: &str, best: Option<Route>) -> Vec<Outgoing> {
        let old = self.best.get(prefix).cloned();
        if old == best {
            return Vec::new();
        }
        match &best {
            Some(route) => {
                self.best.insert(prefix.to_string(), route.clone());
            }
            None => {
                self.best.remove(prefix);
            }
        }
        let mut out = Vec::new();
        for (neighbor, &neighbor_rel) in &self.neighbors {
            match &best {
                Some(route) => {
                    if !self.may_export(route, neighbor_rel) {
                        // If we previously exported something to this
                        // neighbour, withdraw it.
                        if old
                            .as_ref()
                            .map(|o| self.may_export(o, neighbor_rel))
                            .unwrap_or(false)
                        {
                            out.push(Outgoing {
                                to: neighbor.clone(),
                                message: BgpMessage::Withdraw {
                                    prefix: prefix.to_string(),
                                },
                            });
                        }
                        continue;
                    }
                    // Never announce back to the AS we learned the route from.
                    if route.learned_from.as_deref() == Some(neighbor.as_str()) {
                        continue;
                    }
                    // Prepend our ASN to learned routes; locally originated
                    // routes already start with our ASN.
                    let as_path = if route.learned_from.is_some() {
                        let mut p = vec![self.asn.clone()];
                        p.extend(route.as_path.iter().cloned());
                        p
                    } else {
                        route.as_path.clone()
                    };
                    out.push(Outgoing {
                        to: neighbor.clone(),
                        message: BgpMessage::Announce {
                            prefix: prefix.to_string(),
                            as_path,
                        },
                    });
                }
                None => {
                    if old
                        .as_ref()
                        .map(|o| self.may_export(o, neighbor_rel))
                        .unwrap_or(false)
                    {
                        out.push(Outgoing {
                            to: neighbor.clone(),
                            message: BgpMessage::Withdraw {
                                prefix: prefix.to_string(),
                            },
                        });
                    }
                }
            }
        }
        out
    }

    /// Gao–Rexford export policy.
    fn may_export(&self, route: &Route, to_relation: Relation) -> bool {
        match route.relation {
            // Own prefixes and customer routes go to everyone.
            Relation::Customer => true,
            // Peer and provider routes only go to customers.
            Relation::Peer | Relation::Provider => to_relation == Relation::Customer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speaker(asn: &str, neighbors: &[(&str, Relation)]) -> Speaker {
        Speaker::new(
            asn,
            neighbors.iter().map(|(n, r)| (n.to_string(), *r)).collect(),
        )
    }

    #[test]
    fn origination_announces_to_all_neighbors() {
        let mut s = speaker(
            "AS1000",
            &[("AS200", Relation::Provider), ("AS201", Relation::Provider)],
        );
        let out = s.originate("10.0.0.0/8");
        assert_eq!(out.len(), 2);
        for o in &out {
            match &o.message {
                BgpMessage::Announce { as_path, .. } => {
                    assert_eq!(as_path, &vec!["AS1000".to_string()])
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(s.best_route("10.0.0.0/8").is_some());
    }

    #[test]
    fn customer_routes_are_preferred_over_provider_routes() {
        let mut s = speaker(
            "AS200",
            &[
                ("AS1000", Relation::Customer),
                ("AS100", Relation::Provider),
            ],
        );
        // Longer path via customer vs shorter via provider: customer wins.
        s.receive(
            "AS100",
            &BgpMessage::Announce {
                prefix: "p".into(),
                as_path: vec!["AS100".into(), "AS999".into()],
            },
        );
        s.receive(
            "AS1000",
            &BgpMessage::Announce {
                prefix: "p".into(),
                as_path: vec!["AS1000".into(), "AS1001".into(), "AS999".into()],
            },
        );
        let best = s.best_route("p").unwrap();
        assert_eq!(best.learned_from.as_deref(), Some("AS1000"));
        assert_eq!(best.relation, Relation::Customer);
    }

    #[test]
    fn shorter_paths_win_within_the_same_relation() {
        let mut s = speaker(
            "AS100",
            &[("AS200", Relation::Customer), ("AS201", Relation::Customer)],
        );
        s.receive(
            "AS200",
            &BgpMessage::Announce {
                prefix: "p".into(),
                as_path: vec!["AS200".into(), "AS300".into(), "AS999".into()],
            },
        );
        s.receive(
            "AS201",
            &BgpMessage::Announce {
                prefix: "p".into(),
                as_path: vec!["AS201".into(), "AS999".into()],
            },
        );
        assert_eq!(
            s.best_route("p").unwrap().learned_from.as_deref(),
            Some("AS201")
        );
    }

    #[test]
    fn peer_routes_are_not_exported_to_peers_or_providers() {
        let mut s = speaker(
            "AS100",
            &[
                ("AS101", Relation::Peer),
                ("AS102", Relation::Peer),
                ("AS200", Relation::Customer),
            ],
        );
        let out = s.receive(
            "AS101",
            &BgpMessage::Announce {
                prefix: "p".into(),
                as_path: vec!["AS101".into(), "AS999".into()],
            },
        );
        // Exported only to the customer AS200, not to the peer AS102.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, "AS200");
    }

    #[test]
    fn loops_are_rejected() {
        let mut s = speaker("AS100", &[("AS101", Relation::Peer)]);
        let out = s.receive(
            "AS101",
            &BgpMessage::Announce {
                prefix: "p".into(),
                as_path: vec!["AS101".into(), "AS100".into(), "AS999".into()],
            },
        );
        assert!(out.is_empty());
        assert!(s.best_route("p").is_none());
    }

    #[test]
    fn withdrawal_falls_back_to_the_next_best_route_and_propagates() {
        let mut s = speaker(
            "AS200",
            &[
                ("AS1000", Relation::Customer),
                ("AS100", Relation::Provider),
                ("AS1001", Relation::Customer),
            ],
        );
        s.receive(
            "AS1000",
            &BgpMessage::Announce {
                prefix: "p".into(),
                as_path: vec!["AS1000".into(), "AS999".into()],
            },
        );
        s.receive(
            "AS100",
            &BgpMessage::Announce {
                prefix: "p".into(),
                as_path: vec!["AS100".into(), "AS999".into()],
            },
        );
        assert_eq!(
            s.best_route("p").unwrap().learned_from.as_deref(),
            Some("AS1000")
        );
        // Withdraw the customer route: falls back to the provider route, which
        // may only be exported to customers.
        let out = s.receive("AS1000", &BgpMessage::Withdraw { prefix: "p".into() });
        assert_eq!(
            s.best_route("p").unwrap().learned_from.as_deref(),
            Some("AS100")
        );
        // New announcements only to customers (AS1000 learned-from exclusion
        // does not matter here because it is a customer too).
        assert!(out.iter().all(|o| o.to.starts_with("AS100")));
        assert!(!out.is_empty());
        // Withdrawing the provider route too removes the prefix everywhere.
        let out = s.receive("AS100", &BgpMessage::Withdraw { prefix: "p".into() });
        assert!(s.best_route("p").is_none());
        assert!(out
            .iter()
            .any(|o| matches!(o.message, BgpMessage::Withdraw { .. })));
    }
}
