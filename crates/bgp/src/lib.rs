//! # bgp — the legacy-application use case (Quagga/BGP substitute)
//!
//! The second NetTrails use case integrates the platform with an *unmodified
//! legacy application*: "We use the Quagga routing suite to set up a number of
//! BGP instances in multiple ASes. [...] we instantiate all Quagga BGP daemons
//! on a single machine and use the proxy to intercept BGP messages. The Quagga
//! instances form a topology of ASes that consists of several large and small
//! ISPs connected by a mix of customer/provider/peer relationships. Using
//! actual BGP traces from RouteViews, we show that NetTrails can capture
//! derivation histories and origins of routing entries." (Section 3.)
//!
//! Quagga binaries and RouteViews feeds are not available in this environment,
//! so this crate provides behaviour-preserving substitutes (see DESIGN.md §5):
//!
//! * [`topology`] — AS-level topologies with customer/provider/peer
//!   relationships (a few large ISPs peering with each other, mid-size ISPs
//!   buying transit from them, stub ASes at the edge), generated
//!   deterministically;
//! * [`speaker`] — a BGP-like speaker per AS: RIB, Gao–Rexford route
//!   preference (customer > peer > provider, then shortest AS path) and export
//!   policy, AS-path loop detection, announce/withdraw processing. The
//!   speakers are the "black box": the platform never looks inside them;
//! * [`trace`] — a RouteViews-style update-trace generator (prefix
//!   announcements, withdrawal/re-announcement churn);
//! * [`proxy`] — **the NetTrails proxy**: it observes the `inputRoute` /
//!   `outputRoute` messages crossing each AS boundary and applies the paper's
//!   `maybe` rules (`?-`, with `f_isExtend`) to infer the causal links between
//!   them, feeding the resulting rule-execution events into the ExSPAN
//!   provenance system;
//! * [`harness`] — glue that runs a trace through the speakers, drives the
//!   proxy, and exposes provenance queries over routing entries.

pub mod harness;
pub mod proxy;
pub mod speaker;
pub mod topology;
pub mod trace;

pub use harness::{BgpHarness, HarnessStats};
pub use proxy::{Observation, Proxy, MAYBE_RULES};
pub use speaker::{BgpMessage, Relation, Route, Speaker};
pub use topology::AsTopology;
pub use trace::{TraceEvent, TraceEventKind, TraceGenerator};
