//! RouteViews-style update traces.
//!
//! The paper feeds "actual BGP traces from RouteViews" into the demonstration.
//! RouteViews data is not available offline, so this module generates synthetic
//! traces with the same event schema — timestamped prefix announcements and
//! withdrawals attributed to origin ASes — with controllable volume and churn,
//! which is all the provenance pipeline observes.

use crate::topology::AsTopology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// The origin AS starts announcing the prefix.
    Announce,
    /// The origin AS withdraws the prefix.
    Withdraw,
}

/// One BGP update event (the RouteViews schema, reduced to what the
/// demonstration uses).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event time in (simulated) seconds since the trace start.
    pub at_secs: u64,
    /// The origin AS performing the update.
    pub origin: String,
    /// The prefix being announced or withdrawn.
    pub prefix: String,
    /// Announcement or withdrawal.
    pub kind: TraceEventKind,
}

/// Synthetic trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    /// Prefixes originated per stub AS.
    pub prefixes_per_origin: usize,
    /// Number of withdraw/re-announce churn pairs to generate after the
    /// initial announcements.
    pub churn_events: usize,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for TraceGenerator {
    fn default() -> Self {
        TraceGenerator {
            prefixes_per_origin: 1,
            churn_events: 10,
            seed: 42,
        }
    }
}

impl TraceGenerator {
    /// Generate a trace for a topology: every stub AS first announces its
    /// prefixes (one event per second), followed by a churn phase in which
    /// random origins withdraw and re-announce one of their prefixes.
    pub fn generate(&self, topology: &AsTopology) -> Vec<TraceEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let origins: Vec<String> = {
            let stubs = topology.stub_ases();
            if stubs.is_empty() {
                topology.ases().map(str::to_string).collect()
            } else {
                stubs
            }
        };
        let mut events = Vec::new();
        let mut time = 0u64;
        let mut owned: Vec<(String, String)> = Vec::new();
        for origin in &origins {
            for p in 0..self.prefixes_per_origin {
                let prefix = format!(
                    "10.{}.{}.0/24",
                    origins.iter().position(|o| o == origin).unwrap_or(0) % 256,
                    p
                );
                owned.push((origin.clone(), prefix.clone()));
                events.push(TraceEvent {
                    at_secs: time,
                    origin: origin.clone(),
                    prefix,
                    kind: TraceEventKind::Announce,
                });
                time += 1;
            }
        }
        // Churn: withdraw then re-announce random prefixes.
        for _ in 0..self.churn_events {
            if owned.is_empty() {
                break;
            }
            let (origin, prefix) = owned[rng.gen_range(0..owned.len())].clone();
            time += rng.gen_range(1..=5u64);
            events.push(TraceEvent {
                at_secs: time,
                origin: origin.clone(),
                prefix: prefix.clone(),
                kind: TraceEventKind::Withdraw,
            });
            time += rng.gen_range(1..=5u64);
            events.push(TraceEvent {
                at_secs: time,
                origin,
                prefix,
                kind: TraceEventKind::Announce,
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_starts_with_announcements_and_adds_churn_pairs() {
        let topo = AsTopology::generate(2, 3, 5, 3);
        let gen = TraceGenerator {
            prefixes_per_origin: 2,
            churn_events: 4,
            seed: 9,
        };
        let trace = gen.generate(&topo);
        let announces = trace
            .iter()
            .filter(|e| e.kind == TraceEventKind::Announce)
            .count();
        let withdraws = trace
            .iter()
            .filter(|e| e.kind == TraceEventKind::Withdraw)
            .count();
        assert_eq!(withdraws, 4);
        assert_eq!(announces, trace.len() - withdraws);
        // Times are non-decreasing.
        assert!(trace.windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
        // Determinism.
        assert_eq!(trace, gen.generate(&topo));
    }

    #[test]
    fn every_origin_is_a_stub_when_stubs_exist() {
        let topo = AsTopology::generate(2, 3, 5, 3);
        let stubs = topo.stub_ases();
        let trace = TraceGenerator::default().generate(&topo);
        assert!(trace.iter().all(|e| stubs.contains(&e.origin)));
    }
}
