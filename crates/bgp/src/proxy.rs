//! The NetTrails legacy-application proxy.
//!
//! "In the case of a legacy application, capturing provenance information
//! requires some additional work [...] we utilize NDlog's concept of *maybe*
//! rules, which describe possible causal relationships between messages
//! entering and leaving the legacy application." (Section 2.2.)
//!
//! The proxy sits on the wire between BGP speakers. For every intercepted
//! announcement it records an `inputRoute` observation at the receiving AS and
//! an `outputRoute` observation at the sending AS, and evaluates the paper's
//! maybe rule
//!
//! ```text
//! br1 outputRoute(@AS,To,Prefix,Route2) ?-
//!         inputRoute(@AS,From,Prefix,Route1),
//!         f_isExtend(Route2,Route1,AS) == 1.
//! ```
//!
//! against the recently observed inputs of the sending AS: every input route
//! that the output extends by exactly the sender's AS number is inferred to be
//! a possible cause, and a rule-execution vertex is added to the provenance
//! graph. Outputs with no matching input (locally originated prefixes) become
//! base vertices. A `recv` edge links each `inputRoute` to the `outputRoute`
//! message that carried it across the AS boundary, so derivation histories
//! trace all the way back to the origin announcement.

use crate::speaker::BgpMessage;
use ndlog::{BodyElem, Rule, RuleKind};
use nt_runtime::engine::match_atom;
use nt_runtime::eval::{eval_filter, Bindings};
use nt_runtime::{Firing, NodeId, Sym, Tuple, Value, BASE_RULE};
use std::collections::BTreeMap;

/// The maybe rules used by the BGP proxy (the paper's rule `br1`).
pub const MAYBE_RULES: &str = "\
br1 outputRoute(@AS,To,Prefix,Route2) ?- inputRoute(@AS,From,Prefix,Route1), f_isExtend(Route2,Route1,AS) == 1.
";

/// Name of the synthetic rule linking an `inputRoute` observation to the
/// `outputRoute` message that carried it.
pub const RECV_RULE: &str = "recv";

/// An intercepted message on the wire between two ASes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// Sending AS.
    pub from: String,
    /// Receiving AS.
    pub to: String,
    /// The intercepted message.
    pub message: BgpMessage,
}

/// The message-interception proxy.
#[derive(Debug, Clone)]
pub struct Proxy {
    maybe_rules: Vec<Rule>,
    /// Recently observed `inputRoute` tuples per AS (the matching window).
    recent_inputs: BTreeMap<String, Vec<Tuple>>,
    /// Outputs whose cause was inferred by a maybe rule.
    pub matched_outputs: u64,
    /// Outputs with no inferred cause (treated as locally originated).
    pub unmatched_outputs: u64,
}

impl Default for Proxy {
    fn default() -> Self {
        Proxy::new()
    }
}

impl Proxy {
    /// A proxy using the paper's `br1` maybe rule.
    pub fn new() -> Self {
        Proxy::with_rules(MAYBE_RULES).expect("builtin maybe rules parse")
    }

    /// A proxy using custom maybe rules (must parse; non-maybe rules are
    /// ignored).
    pub fn with_rules(src: &str) -> Result<Self, ndlog::NdlogError> {
        let program = ndlog::compile(src)?;
        let maybe_rules = program
            .rules
            .into_iter()
            .filter(|r| r.kind == RuleKind::Maybe)
            .collect();
        Ok(Proxy {
            maybe_rules,
            recent_inputs: BTreeMap::new(),
            matched_outputs: 0,
            unmatched_outputs: 0,
        })
    }

    /// The parsed maybe rules.
    pub fn maybe_rules(&self) -> &[Rule] {
        &self.maybe_rules
    }

    /// Build the `inputRoute(@To, From, Prefix, Path)` observation tuple.
    pub fn input_route_tuple(to: &str, from: &str, prefix: &str, path: &[String]) -> Tuple {
        Tuple::new(
            "inputRoute",
            vec![
                Value::addr(to),
                Value::addr(from),
                Value::str(prefix),
                Value::List(path.iter().map(|a| Value::addr(a.clone())).collect()),
            ],
        )
    }

    /// Build the `outputRoute(@From, To, Prefix, Path)` observation tuple.
    pub fn output_route_tuple(from: &str, to: &str, prefix: &str, path: &[String]) -> Tuple {
        Tuple::new(
            "outputRoute",
            vec![
                Value::addr(from),
                Value::addr(to),
                Value::str(prefix),
                Value::List(path.iter().map(|a| Value::addr(a.clone())).collect()),
            ],
        )
    }

    /// Process a batch of messages intercepted on one AS adjacency (same
    /// sender, same receiver — one interception window) and return the
    /// provenance events they imply, in wire order. Maybe-rule matching is
    /// per message: an output is attributed against the inputs its sender
    /// had received *before* the batch, exactly as if the messages had been
    /// intercepted one by one, so batching the relay changes no provenance.
    pub fn observe_batch(&mut self, observations: &[Observation]) -> Vec<Firing> {
        let mut firings = Vec::new();
        for observation in observations {
            firings.extend(self.observe(observation));
        }
        firings
    }

    /// Process one intercepted message and return the provenance events it
    /// implies. Withdrawals carry no route and produce no provenance (the
    /// message log is append-only history).
    pub fn observe(&mut self, observation: &Observation) -> Vec<Firing> {
        let BgpMessage::Announce { prefix, as_path } = &observation.message else {
            return Vec::new();
        };
        let mut firings = Vec::new();
        let output = Self::output_route_tuple(&observation.from, &observation.to, prefix, as_path);
        let input = Self::input_route_tuple(&observation.to, &observation.from, prefix, as_path);

        // 1. Attribute the outputRoute at the sender using the maybe rules.
        let candidates = self
            .recent_inputs
            .get(&observation.from)
            .cloned()
            .unwrap_or_default();
        let causes = self.infer_causes(&observation.from, &output, &candidates);
        if causes.is_empty() {
            self.unmatched_outputs += 1;
            firings.push(Firing {
                rule: Sym::new(BASE_RULE),
                node: NodeId::new(&observation.from),
                head: output.clone(),
                head_home: NodeId::new(&observation.from),
                inputs: vec![],
                input_tuples: vec![],
                insert: true,
            });
        } else {
            self.matched_outputs += 1;
            for (rule_name, cause) in causes {
                firings.push(Firing {
                    rule: Sym::new(&rule_name),
                    node: NodeId::new(&observation.from),
                    head: output.clone(),
                    head_home: NodeId::new(&observation.from),
                    inputs: vec![cause.id()],
                    input_tuples: vec![cause],
                    insert: true,
                });
            }
        }

        // 2. Link the inputRoute at the receiver to the message that carried
        // it (executed at the sender, stored at the receiver).
        firings.push(Firing {
            rule: Sym::new(RECV_RULE),
            node: NodeId::new(&observation.from),
            head: input.clone(),
            head_home: NodeId::new(&observation.to),
            inputs: vec![output.id()],
            input_tuples: vec![output],
            insert: true,
        });

        // 3. Remember the input for future maybe-rule matching at the
        // receiver.
        self.recent_inputs
            .entry(observation.to.clone())
            .or_default()
            .push(input);
        firings
    }

    /// Evaluate the maybe rules: which recently observed inputs could have
    /// caused `output` at `asn`?
    fn infer_causes(
        &self,
        asn: &str,
        output: &Tuple,
        candidates: &[Tuple],
    ) -> Vec<(String, Tuple)> {
        let mut causes = Vec::new();
        for rule in &self.maybe_rules {
            // Bind the head against the observed output.
            let mut head_bindings = Bindings::new();
            if !match_atom(&rule.head, output, &mut head_bindings) {
                continue;
            }
            // The location variable of the head must be this AS.
            if let Some(loc) = rule.head.location_variable() {
                if head_bindings.get(loc).and_then(|v| v.as_addr()) != Some(asn) {
                    continue;
                }
            }
            for candidate in candidates {
                let mut bindings = head_bindings.clone();
                let mut ok = true;
                for elem in &rule.body {
                    match elem {
                        BodyElem::Atom(atom) if !atom.negated => {
                            if !match_atom(atom, candidate, &mut bindings) {
                                ok = false;
                                break;
                            }
                        }
                        BodyElem::Filter(expr) => {
                            if !eval_filter(expr, &bindings).unwrap_or(false) {
                                ok = false;
                                break;
                            }
                        }
                        BodyElem::Assign { var, expr } => {
                            match nt_runtime::eval::eval_expr(expr, &bindings) {
                                Ok(v) => {
                                    bindings.insert(var.clone(), v);
                                }
                                Err(_) => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        BodyElem::Atom(_) => {}
                    }
                }
                if ok {
                    causes.push((rule.name.clone(), candidate.clone()));
                }
            }
        }
        causes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn announce(from: &str, to: &str, prefix: &str, path: &[&str]) -> Observation {
        Observation {
            from: from.to_string(),
            to: to.to_string(),
            message: BgpMessage::Announce {
                prefix: prefix.to_string(),
                as_path: path.iter().map(|s| s.to_string()).collect(),
            },
        }
    }

    #[test]
    fn origin_announcements_become_base_vertices() {
        let mut proxy = Proxy::new();
        let firings = proxy.observe(&announce("AS1000", "AS200", "p", &["AS1000"]));
        assert_eq!(firings.len(), 2);
        assert_eq!(firings[0].rule, BASE_RULE);
        assert_eq!(firings[0].head.relation, "outputRoute");
        assert_eq!(firings[1].rule, RECV_RULE);
        assert_eq!(firings[1].head.relation, "inputRoute");
        assert_eq!(firings[1].head_home, "AS200");
        assert_eq!(proxy.unmatched_outputs, 1);
    }

    #[test]
    fn maybe_rule_links_extended_routes() {
        let mut proxy = Proxy::new();
        // AS1000 announces to AS200 ...
        proxy.observe(&announce("AS1000", "AS200", "p", &["AS1000"]));
        // ... AS200 re-announces to AS100, prepending itself.
        let firings = proxy.observe(&announce("AS200", "AS100", "p", &["AS200", "AS1000"]));
        // The outputRoute at AS200 is attributed to the inputRoute it extends.
        let br1 = firings.iter().find(|f| f.rule == "br1").expect("br1 fired");
        assert_eq!(br1.node, "AS200");
        assert_eq!(br1.input_tuples[0].relation, "inputRoute");
        assert_eq!(proxy.matched_outputs, 1);
    }

    #[test]
    fn non_extending_routes_are_not_linked() {
        let mut proxy = Proxy::new();
        proxy.observe(&announce("AS1000", "AS200", "p", &["AS1000"]));
        // AS200 announces a path that does NOT extend the received one
        // (different origin) — the maybe rule must not match.
        let firings = proxy.observe(&announce("AS200", "AS100", "p", &["AS200", "AS999"]));
        assert!(firings.iter().all(|f| f.rule != "br1"));
        // Both the origin announcement and the non-extending output count as
        // unmatched.
        assert_eq!(proxy.unmatched_outputs, 2);
    }

    #[test]
    fn different_prefixes_never_match() {
        let mut proxy = Proxy::new();
        proxy.observe(&announce("AS1000", "AS200", "p1", &["AS1000"]));
        let firings = proxy.observe(&announce("AS200", "AS100", "p2", &["AS200", "AS1000"]));
        assert!(firings.iter().all(|f| f.rule != "br1"));
    }

    #[test]
    fn withdrawals_produce_no_provenance() {
        let mut proxy = Proxy::new();
        let firings = proxy.observe(&Observation {
            from: "AS1000".into(),
            to: "AS200".into(),
            message: BgpMessage::Withdraw { prefix: "p".into() },
        });
        assert!(firings.is_empty());
    }

    #[test]
    fn observe_batch_matches_sequential_observation() {
        let obs = [
            announce("AS1000", "AS200", "p1", &["AS1000"]),
            announce("AS1000", "AS200", "p2", &["AS1000"]),
        ];
        let mut sequential = Proxy::new();
        let expected: Vec<Firing> = obs
            .iter()
            .flat_map(|o| sequential.observe(o).into_iter().collect::<Vec<_>>())
            .collect();
        let mut batched = Proxy::new();
        assert_eq!(batched.observe_batch(&obs), expected);
        assert_eq!(batched.unmatched_outputs, sequential.unmatched_outputs);
    }

    #[test]
    fn custom_rules_can_be_supplied() {
        // A stricter rule that additionally requires the next hop to match.
        let src = "br2 outputRoute(@AS,To,Prefix,R2) ?- inputRoute(@AS,From,Prefix,R1), \
                   f_isExtend(R2,R1,AS) == 1, f_size(R2) < 4.";
        let mut proxy = Proxy::with_rules(src).unwrap();
        assert_eq!(proxy.maybe_rules().len(), 1);
        proxy.observe(&announce("AS1000", "AS200", "p", &["AS1000"]));
        let firings = proxy.observe(&announce("AS200", "AS100", "p", &["AS200", "AS1000"]));
        assert!(firings.iter().any(|f| f.rule == "br2"));
    }
}
