//! The BGP demonstration harness: speakers + proxy + provenance.
//!
//! [`BgpHarness`] instantiates one [`Speaker`] per AS of an [`AsTopology`]
//! ("all Quagga BGP daemons on a single machine"), replays a RouteViews-style
//! trace through them, intercepts every inter-AS message with the
//! [`Proxy`], and maintains provenance in an ExSPAN [`ProvenanceSystem`]:
//!
//! * message-level provenance (`outputRoute` / `inputRoute` and the maybe-rule
//!   links between them) is an append-only history of what was observed;
//! * FIB-level provenance (`route(@AS, Prefix, Path)` selected-route entries,
//!   rule `select`) is maintained incrementally: when an AS changes its best
//!   route the old entry's provenance is retracted and the new one's added —
//!   so "users can perform various analytical and diagnostic tasks", e.g.
//!   trace a routing entry back to the origin announcement.

use crate::proxy::{Observation, Proxy};
use crate::speaker::{Relation, Route, Speaker};
use crate::topology::AsTopology;
use crate::trace::{TraceEvent, TraceEventKind};
#[cfg(test)]
use nt_runtime::NodeId;
use nt_runtime::{Firing, Sym, Tuple, TupleId, Value, BASE_RULE};
use provenance::ProvenanceSystem;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Name of the rule that attributes a FIB entry to the announcement it was
/// selected from.
pub const SELECT_RULE: &str = "select";

/// Counters describing a harness run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarnessStats {
    /// Trace events applied.
    pub trace_events: usize,
    /// Inter-AS BGP messages exchanged (and intercepted by the proxy).
    pub messages: u64,
    /// Interception batches the proxy observed: consecutive messages relayed
    /// on the same (sender, receiver) adjacency are intercepted together
    /// (the BGP-side analogue of the platform's per-destination delta
    /// batches), so `message_batches <= messages`.
    pub message_batches: u64,
    /// Best-route (FIB) changes across all ASes.
    pub fib_changes: u64,
    /// Outputs whose cause was inferred by a maybe rule.
    pub maybe_matches: u64,
    /// Outputs treated as locally originated.
    pub maybe_unmatched: u64,
}

/// The BGP + provenance harness.
#[derive(Debug)]
pub struct BgpHarness {
    topology: AsTopology,
    speakers: BTreeMap<String, Speaker>,
    proxy: Proxy,
    provenance: ProvenanceSystem,
    stats: HarnessStats,
    /// Last `select` firing per (AS, prefix), kept so it can be retracted when
    /// the best route changes.
    fib_provenance: BTreeMap<(String, String), Firing>,
}

impl BgpHarness {
    /// Build a harness over an AS topology, with the paper's maybe rules.
    pub fn new(topology: AsTopology) -> Self {
        let mut speakers = BTreeMap::new();
        for asn in topology.ases() {
            let neighbors: BTreeMap<String, Relation> =
                topology.neighbors(asn).into_iter().collect();
            speakers.insert(asn.to_string(), Speaker::new(asn, neighbors));
        }
        let provenance = ProvenanceSystem::new(topology.ases().map(str::to_string));
        BgpHarness {
            topology,
            speakers,
            proxy: Proxy::new(),
            provenance,
            stats: HarnessStats::default(),
            fib_provenance: BTreeMap::new(),
        }
    }

    /// The AS topology.
    pub fn topology(&self) -> &AsTopology {
        &self.topology
    }

    /// The provenance system (query it with [`provenance::QueryEngine`]).
    pub fn provenance(&self) -> &ProvenanceSystem {
        &self.provenance
    }

    /// Run counters.
    pub fn stats(&self) -> &HarnessStats {
        &self.stats
    }

    /// The proxy (exposes maybe-rule match counters).
    pub fn proxy(&self) -> &Proxy {
        &self.proxy
    }

    /// The best route an AS currently has for a prefix.
    pub fn best_route(&self, asn: &str, prefix: &str) -> Option<&Route> {
        self.speakers.get(asn).and_then(|s| s.best_route(prefix))
    }

    /// The `route(@AS, Prefix, Path)` FIB tuple for a selected route.
    pub fn route_tuple(asn: &str, route: &Route) -> Tuple {
        Tuple::new(
            "route",
            vec![
                Value::addr(asn),
                Value::str(route.prefix.clone()),
                Value::List(
                    route
                        .as_path
                        .iter()
                        .map(|a| Value::addr(a.clone()))
                        .collect(),
                ),
            ],
        )
    }

    /// The FIB tuple an AS currently has installed for a prefix, if any —
    /// the natural target of a provenance query.
    pub fn fib_tuple(&self, asn: &str, prefix: &str) -> Option<Tuple> {
        self.best_route(asn, prefix)
            .map(|r| Self::route_tuple(asn, r))
    }

    /// Apply one trace event and propagate BGP messages until quiescence.
    pub fn apply_event(&mut self, event: &TraceEvent) {
        self.stats.trace_events += 1;
        let Some(speaker) = self.speakers.get_mut(&event.origin) else {
            return;
        };
        let outgoing = match event.kind {
            TraceEventKind::Announce => speaker.originate(&event.prefix),
            TraceEventKind::Withdraw => speaker.withdraw_origin(&event.prefix),
        };
        let origin = event.origin.clone();
        self.record_fib_change(&origin, &event.prefix);
        let initial: VecDeque<(String, crate::speaker::Outgoing)> =
            outgoing.into_iter().map(|o| (origin.clone(), o)).collect();
        self.propagate(initial);
    }

    /// Replay a whole trace.
    pub fn run_trace(&mut self, trace: &[TraceEvent]) {
        for event in trace {
            self.apply_event(event);
        }
    }

    fn propagate(&mut self, mut queue: VecDeque<(String, crate::speaker::Outgoing)>) {
        while let Some((from, outgoing)) = queue.pop_front() {
            let to = outgoing.to.clone();
            // Coalesce the run of queued messages relayed on the same
            // (from, to) adjacency into one interception batch. Only
            // consecutive messages are grouped — reordering deliveries
            // would change route selection — so batching is purely a relay
            // optimization and provenance is unchanged.
            let mut messages = vec![outgoing];
            while matches!(queue.front(), Some((f, o)) if *f == from && o.to == to) {
                messages.push(queue.pop_front().expect("peeked front").1);
            }
            self.stats.messages += messages.len() as u64;
            self.stats.message_batches += 1;
            let observations: Vec<Observation> = messages
                .iter()
                .map(|m| Observation {
                    from: from.clone(),
                    to: to.clone(),
                    message: m.message.clone(),
                })
                .collect();
            let firings = self.proxy.observe_batch(&observations);
            self.provenance.apply_firings(firings.iter());

            for outgoing in messages {
                let prefix = outgoing.message.prefix().to_string();
                let Some(receiver) = self.speakers.get_mut(&to) else {
                    continue;
                };
                let responses = receiver.receive(&from, &outgoing.message);
                self.record_fib_change(&to, &prefix);
                for r in responses {
                    queue.push_back((to.clone(), r));
                }
            }
        }
        self.stats.maybe_matches = self.proxy.matched_outputs;
        self.stats.maybe_unmatched = self.proxy.unmatched_outputs;
    }

    /// Reconcile FIB provenance after a potential best-route change at `asn`.
    fn record_fib_change(&mut self, asn: &str, prefix: &str) {
        let current = self
            .speakers
            .get(asn)
            .and_then(|s| s.best_route(prefix).cloned());
        let key = (asn.to_string(), prefix.to_string());
        let new_firing = current.as_ref().map(|route| {
            let head = Self::route_tuple(asn, route);
            let (rule, inputs, input_tuples): (Sym, Vec<TupleId>, Vec<Tuple>) =
                match &route.learned_from {
                    Some(neighbor) => {
                        let input =
                            Proxy::input_route_tuple(asn, neighbor, &route.prefix, &route.as_path);
                        (Sym::new(SELECT_RULE), vec![input.id()], vec![input])
                    }
                    None => (Sym::new(BASE_RULE), vec![], vec![]),
                };
            Firing {
                rule,
                node: asn.into(),
                head,
                head_home: asn.into(),
                inputs,
                input_tuples,
                insert: true,
            }
        });
        let old_firing = self.fib_provenance.get(&key).cloned();
        if old_firing.as_ref().map(|f| (&f.head, &f.inputs))
            == new_firing.as_ref().map(|f| (&f.head, &f.inputs))
        {
            return;
        }
        self.stats.fib_changes += 1;
        if let Some(mut old) = old_firing {
            old.insert = false;
            old.input_tuples.clear();
            self.provenance.apply_firing(&old);
            self.fib_provenance.remove(&key);
        }
        if let Some(new) = new_firing {
            self.provenance.apply_firing(&new);
            self.fib_provenance.insert(key, new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provenance::{QueryEngine, QueryKind, QueryOptions, QueryResult};

    /// AS100 (tier-1) provides transit to AS200 and AS201; AS1000 is a stub
    /// customer of AS200.
    fn small_topology() -> AsTopology {
        let mut t = AsTopology::new();
        t.add_peering("AS100", "AS101");
        t.add_customer("AS100", "AS200");
        t.add_customer("AS101", "AS201");
        t.add_customer("AS200", "AS1000");
        t.add_customer("AS201", "AS1001");
        t
    }

    fn announce(origin: &str, prefix: &str) -> TraceEvent {
        TraceEvent {
            at_secs: 0,
            origin: origin.to_string(),
            prefix: prefix.to_string(),
            kind: TraceEventKind::Announce,
        }
    }

    #[test]
    fn announcements_propagate_across_the_as_graph() {
        let mut h = BgpHarness::new(small_topology());
        h.apply_event(&announce("AS1000", "10.0.0.0/24"));
        // Every AS eventually has a route (valley-free reachability holds in
        // this topology).
        for asn in ["AS200", "AS100", "AS101", "AS201", "AS1001"] {
            let route = h.best_route(asn, "10.0.0.0/24");
            assert!(route.is_some(), "{asn} should have a route");
            assert_eq!(route.unwrap().origin(), Some("AS1000"));
        }
        assert!(h.stats().messages > 0);
        assert!(h.stats().maybe_matches > 0, "re-announcements matched br1");
    }

    #[test]
    fn fib_provenance_traces_back_to_the_origin_announcement() {
        let mut h = BgpHarness::new(small_topology());
        h.apply_event(&announce("AS1000", "10.0.0.0/24"));
        let target = h
            .fib_tuple("AS201", "10.0.0.0/24")
            .expect("route installed");
        let mut qe = QueryEngine::new();
        let (result, _) = qe.query(
            h.provenance(),
            "AS201",
            &target,
            QueryKind::ParticipatingNodes,
            &QueryOptions::default(),
        );
        let QueryResult::ParticipatingNodes(nodes) = result else {
            panic!("wrong result");
        };
        // The derivation history crosses every AS on the path back to the
        // origin.
        assert!(nodes.contains(&NodeId::new("AS201")));
        assert!(nodes.contains(&NodeId::new("AS101")));
        assert!(nodes.contains(&NodeId::new("AS100")));
        assert!(nodes.contains(&NodeId::new("AS200")));
        assert!(nodes.contains(&NodeId::new("AS1000")));

        let (result, _) = qe.query(
            h.provenance(),
            "AS201",
            &target,
            QueryKind::BaseTuples,
            &QueryOptions::default(),
        );
        let QueryResult::BaseTuples(bases) = result else {
            panic!()
        };
        assert!(
            bases.iter().any(|(_, t)| t
                .as_ref()
                .map(|t| t.relation == "outputRoute" && t.values[0].as_addr() == Some("AS1000"))
                .unwrap_or(false)),
            "origin announcement is a base vertex: {bases:?}"
        );
    }

    #[test]
    fn withdrawal_retracts_fib_provenance() {
        let mut h = BgpHarness::new(small_topology());
        h.apply_event(&announce("AS1000", "10.0.0.0/24"));
        let before = h.provenance().stats().prov_entries;
        h.apply_event(&TraceEvent {
            at_secs: 1,
            origin: "AS1000".into(),
            prefix: "10.0.0.0/24".into(),
            kind: TraceEventKind::Withdraw,
        });
        assert!(h.best_route("AS201", "10.0.0.0/24").is_none());
        let after = h.provenance().stats().prov_entries;
        assert!(
            after < before,
            "FIB provenance entries retracted ({before} -> {after})"
        );
        assert!(
            h.stats().fib_changes >= 10,
            "announce + withdraw across 6 ASes"
        );
    }

    #[test]
    fn relay_batches_are_counted() {
        let mut h = BgpHarness::new(small_topology());
        h.apply_event(&announce("AS1000", "10.0.0.0/24"));
        assert!(h.stats().message_batches > 0);
        assert!(
            h.stats().message_batches <= h.stats().messages,
            "a batch carries at least one message"
        );
    }

    #[test]
    fn generated_topology_and_trace_run_end_to_end() {
        let topo = AsTopology::generate(2, 3, 4, 11);
        let trace = crate::trace::TraceGenerator {
            prefixes_per_origin: 1,
            churn_events: 3,
            seed: 5,
        }
        .generate(&topo);
        let mut h = BgpHarness::new(topo);
        h.run_trace(&trace);
        assert_eq!(h.stats().trace_events, trace.len());
        assert!(h.provenance().stats().prov_entries > 0);
        assert!(h.provenance().stats().rule_execs > 0);
    }
}
