//! Process-wide persistent worker pool.
//!
//! The sharded provenance maintenance engine used to spawn scoped threads for
//! every round's apply phase; on deep fixpoints (hundreds of rounds) the
//! spawn and join cost dominated the phase itself. This crate keeps one
//! process-wide pool of long-lived workers — spawned once, parked on a shared
//! queue — and lets callers dispatch borrowed closures to them. It is shared
//! by the provenance shard router (per-shard apply passes), the query
//! executor pump, and the runtime's morsel-driven parallel fixpoint
//! (per-morsel rule evaluation), which is why it lives in its own crate
//! below both `nt-runtime` and `provenance`.
//!
//! The closures borrow per-round state (shard slices, firing streams, the
//! engine's database), so they are **not** `'static`. [`run_borrowed`] makes
//! that sound the same way `std::thread::scope` does: the caller blocks on a
//! completion barrier (one acknowledgement per task) before returning, so
//! every borrow strictly outlives the workers' use of it. The lifetime is
//! erased only to cross the queue, never to outlive the call.
//!
//! [`run_borrowed_limited`] additionally caps how many tasks are in flight at
//! once — the knob the parallel fixpoint sweeps to measure W ∈ {1, 2, 4}
//! scaling on one machine without re-sizing the pool.
//!
//! Workers survive task panics (the panic is caught, the acknowledgement
//! channel closes, and the dispatching caller propagates the failure), so
//! one poisoned round cannot leak threads or strand the next round.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, OnceLock};

/// A type-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Sender<Job>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static JOBS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Build (once) and return the process-wide pool. One worker per available
/// core: no caller ever has more runnable tasks than cores worth running
/// in parallel, and excess tasks simply queue.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let (tx, rx) = channel::<Job>();
        let rx = std::sync::Arc::new(Mutex::new(rx));
        for i in 0..workers {
            let rx: std::sync::Arc<Mutex<Receiver<Job>>> = rx.clone();
            std::thread::Builder::new()
                .name(format!("nt-pool-{i}"))
                .spawn(move || loop {
                    let job = {
                        let guard = rx.lock().expect("pool queue lock");
                        guard.recv()
                    };
                    match job {
                        Ok(job) => {
                            JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
                            // Keep the worker alive across task panics; the
                            // dispatcher notices the missing acknowledgement.
                            let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
                        }
                        // The queue sender lives in a static: this only
                        // happens at process teardown.
                        Err(_) => return,
                    }
                })
                .expect("spawn pool worker");
        }
        Pool { queue: tx, workers }
    })
}

/// Number of long-lived workers in the pool (0 until first use).
pub fn workers() -> usize {
    POOL.get().map(|p| p.workers).unwrap_or(0)
}

/// Total jobs ever executed by the pool (tests assert reuse: this grows
/// while [`workers`] stays constant).
pub fn jobs_executed() -> u64 {
    JOBS_EXECUTED.load(Ordering::Relaxed)
}

/// Run every task on the persistent pool and return their results in task
/// order. Blocks until all tasks finished — the completion barrier that
/// makes the borrowed (non-`'static`) closures sound.
///
/// Panics if a task panicked (mirroring the `join().expect(..)` behavior of
/// the scoped-thread code this replaces).
pub fn run_borrowed<'env, R: Send + 'env>(
    tasks: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
) -> Vec<R> {
    let limit = tasks.len();
    run_borrowed_limited(tasks, limit)
}

/// Like [`run_borrowed`], but keeps at most `limit` tasks in flight at once:
/// the first `limit` tasks are dispatched immediately and each completion
/// acknowledgement releases the next. With `limit >= tasks.len()` this is
/// exactly [`run_borrowed`]; with `limit == 1` the tasks run one at a time
/// (still on pool threads). Results come back in task order either way.
///
/// Panics if a task panicked or if `limit == 0` with tasks pending.
pub fn run_borrowed_limited<'env, R: Send + 'env>(
    tasks: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
    limit: usize,
) -> Vec<R> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(limit > 0, "cannot run tasks with a zero in-flight limit");
    let (done_tx, done_rx) = channel::<(usize, R)>();
    let dispatch = |index: usize, task: Box<dyn FnOnce() -> R + Send + 'env>| {
        let done = done_tx.clone();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = task();
            // The dispatcher may have given up (it panics on a lost task
            // and drops the receiver); a failed send is then irrelevant.
            let _ = done.send((index, result));
        });
        // SAFETY: the job only borrows data alive for 'env, and this
        // function does not return until every job has acknowledged
        // completion (or a loss is detected, which panics and aborts the
        // round) — so the erased borrows never dangle. This is the same
        // contract std::thread::scope enforces, expressed over a queue.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        pool().queue.send(job).expect("pool queue closed");
    };
    let mut pending = tasks.into_iter().enumerate();
    for (index, task) in pending.by_ref().take(limit) {
        dispatch(index, task);
    }
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let (index, result) = done_rx.recv().expect("pool worker task panicked");
        results[index] = Some(result);
        if let Some((next_index, task)) = pending.next() {
            dispatch(next_index, task);
        }
    }
    drop(done_tx);
    results
        .into_iter()
        .map(|r| r.expect("every task reported"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let inputs: Vec<usize> = (0..32).collect();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = inputs
            .iter()
            .map(|&i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send + '_>)
            .collect();
        let results = run_borrowed(tasks);
        assert_eq!(results, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn workers_are_spawned_once_and_reused() {
        let borrowed = vec![1u64, 2, 3, 4];
        let run = |data: &Vec<u64>| {
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = data
                .iter()
                .map(|v| Box::new(move || *v + 1) as Box<dyn FnOnce() -> u64 + Send + '_>)
                .collect();
            run_borrowed(tasks)
        };
        let first = run(&borrowed);
        let spawned = workers();
        let jobs_after_first = jobs_executed();
        let second = run(&borrowed);
        assert_eq!(first, vec![2, 3, 4, 5]);
        assert_eq!(first, second);
        assert_eq!(workers(), spawned, "no re-spawning between rounds");
        assert!(jobs_executed() >= jobs_after_first + borrowed.len() as u64);
    }

    #[test]
    fn limited_dispatch_returns_results_in_task_order() {
        let inputs: Vec<usize> = (0..48).collect();
        for limit in [1usize, 2, 4, 64] {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = inputs
                .iter()
                .map(|&i| Box::new(move || i * 3) as Box<dyn FnOnce() -> usize + Send + '_>)
                .collect();
            let results = run_borrowed_limited(tasks, limit);
            assert_eq!(results, (0..48).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let tasks: Vec<Box<dyn FnOnce() -> u8 + Send + 'static>> = Vec::new();
        assert!(run_borrowed_limited(tasks, 1).is_empty());
    }
}
