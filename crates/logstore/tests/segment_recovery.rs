//! Satellite: serde round-trip + recovery for the segment-file backend.
//!
//! Write a checkpoint/delta stream through `SnapshotCapturer` into a
//! `SegmentFileBackend`, drop the handle, reopen the directory from disk —
//! including once with a truncated tail simulating a crash mid-append — and
//! assert every `at(time)` answer matches an in-memory store fed the same
//! captures.

use logstore::snapshot::{tuple_sort_key, NodeSnapshot};
use logstore::{LogStore, SegmentFileBackend, SnapshotCapturer, SystemSnapshot};
use nt_runtime::{Tuple, Value};
use simnet::{SimTime, Topology};
use std::fs;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ntl-recovery-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn snapshot(secs: u64, costs: &[i64], topo: Topology) -> SystemSnapshot {
    let mut node = NodeSnapshot {
        node: "n1".into(),
        ..Default::default()
    };
    let mut tuples: Vec<Tuple> = costs
        .iter()
        .map(|c| Tuple::new("cost", vec![Value::addr("n1"), Value::Int(*c)]))
        .collect();
    tuples.sort_by_key(tuple_sort_key);
    node.relations.insert("cost".into(), tuples);
    let mut snap = SystemSnapshot {
        time: SimTime::from_secs(secs),
        topology: topo,
        ..Default::default()
    };
    snap.nodes.insert("n1".into(), node);
    snap.stamp_dictionary();
    snap
}

fn captures() -> Vec<SystemSnapshot> {
    vec![
        snapshot(1, &[1], Topology::line(3)),
        snapshot(2, &[1, 2], Topology::line(3)),
        snapshot(3, &[2, 3], Topology::line(2)),
        snapshot(4, &[3], Topology::line(2)),
        snapshot(5, &[3, 4, 5], Topology::line(4)),
        snapshot(6, &[4, 5], Topology::line(4)),
    ]
}

fn fill(store: &mut LogStore, snaps: &[SystemSnapshot], checkpoint_every: usize) {
    let mut capturer = SnapshotCapturer::new(checkpoint_every);
    for snap in snaps {
        store.append_record(capturer.capture(snap.clone()));
    }
}

#[test]
fn reopened_segment_store_answers_at_queries_like_memory() {
    let dir = tempdir("roundtrip");
    let snaps = captures();

    let mut mem = LogStore::new();
    fill(&mut mem, &snaps, 3);

    {
        let backend = SegmentFileBackend::open(&dir)
            .unwrap()
            .with_segment_capacity(4);
        let mut seg = LogStore::with_backend(Box::new(backend));
        fill(&mut seg, &snaps, 3);
        assert_eq!(seg.uploaded_bytes(), mem.uploaded_bytes());
        seg.flush();
        // Handle dropped here: only the on-disk segments survive.
    }

    let reopened = LogStore::with_backend(Box::new(SegmentFileBackend::open(&dir).unwrap()));
    assert_eq!(reopened.len(), snaps.len());
    for probe_us in (0..=7_000_000).step_by(500_000) {
        let t = SimTime::from_micros(probe_us);
        assert_eq!(
            reopened.at(t),
            mem.at(t),
            "at({probe_us}us) diverged after recovery"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_tail_recovers_the_intact_prefix() {
    let dir = tempdir("torn");
    let snaps = captures();
    {
        let backend = SegmentFileBackend::open(&dir)
            .unwrap()
            .with_segment_capacity(100);
        let mut seg = LogStore::with_backend(Box::new(backend));
        fill(&mut seg, &snaps, 3);
        seg.flush();
    }
    // Tear the last record: chop bytes off the single unsealed segment.
    let seg_file = dir.join("seg-00000.ntl");
    let bytes = fs::read(&seg_file).unwrap();
    fs::write(&seg_file, &bytes[..bytes.len() - 17]).unwrap();

    let reopened = LogStore::with_backend(Box::new(SegmentFileBackend::open(&dir).unwrap()));
    assert_eq!(reopened.len(), snaps.len() - 1, "torn tail record dropped");

    // Every surviving record still materializes exactly as the in-memory
    // store that never saw the final capture.
    let mut mem = LogStore::new();
    fill(&mut mem, &snaps[..snaps.len() - 1], 3);
    for probe_us in (0..=7_000_000).step_by(500_000) {
        let t = SimTime::from_micros(probe_us);
        assert_eq!(reopened.at(t), mem.at(t), "at({probe_us}us) diverged");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sealed_segments_compact_and_keep_answers() {
    let dir = tempdir("compact");
    let snaps = captures();
    let mut mem = LogStore::new();
    fill(&mut mem, &snaps, 2);

    let backend = SegmentFileBackend::open(&dir)
        .unwrap()
        .with_segment_capacity(2);
    let mut seg = LogStore::with_backend(Box::new(backend));
    fill(&mut seg, &snaps, 2);
    let stats = seg.compact();
    assert_eq!(stats.records, snaps.len());
    assert!(stats.bytes_after <= stats.bytes_before);
    for i in 0..snaps.len() {
        assert_eq!(
            seg.get(i),
            mem.get(i),
            "index {i} diverged after compaction"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}
