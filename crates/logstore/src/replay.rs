//! Replay of stored snapshots.
//!
//! The demonstration replays execution logs: the RapidNet visualizer shows the
//! topology changing while the provenance visualizer shows the provenance at
//! the paused instant. [`Replay`] walks the snapshots of a [`LogStore`] in
//! time order and produces, for every step, the [`SnapshotDiff`] between
//! consecutive snapshots — which tuples appeared and disappeared, and how the
//! topology changed — which is exactly what an animation layer needs.

use crate::snapshot::SystemSnapshot;
use crate::store::LogStore;
use nt_runtime::{Addr, Tuple};
use serde::{Deserialize, Serialize};
use simnet::SimTime;
use std::collections::BTreeSet;

/// The difference between two consecutive snapshots.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDiff {
    /// Time of the earlier snapshot.
    pub from: SimTime,
    /// Time of the later snapshot.
    pub to: SimTime,
    /// Tuples present in the later snapshot but not in the earlier one.
    pub appeared: Vec<(Addr, Tuple)>,
    /// Tuples present in the earlier snapshot but not in the later one.
    pub disappeared: Vec<(Addr, Tuple)>,
    /// Directed links added to the topology.
    pub links_added: Vec<(String, String)>,
    /// Directed links removed from the topology.
    pub links_removed: Vec<(String, String)>,
}

impl SnapshotDiff {
    /// True when nothing changed between the two snapshots.
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty()
            && self.disappeared.is_empty()
            && self.links_added.is_empty()
            && self.links_removed.is_empty()
    }

    /// Compute the diff between two snapshots.
    pub fn between(a: &SystemSnapshot, b: &SystemSnapshot) -> Self {
        let tuples = |s: &SystemSnapshot| -> BTreeSet<(Addr, String)> {
            s.nodes
                .iter()
                .flat_map(|(node, ns)| {
                    ns.relations
                        .values()
                        .flatten()
                        .map(move |t| (*node, t.to_string()))
                })
                .collect()
        };
        let set_a = tuples(a);
        let set_b = tuples(b);
        let lookup = |s: &SystemSnapshot, key: &(Addr, String)| -> Option<(Addr, Tuple)> {
            s.nodes.get(&key.0).and_then(|ns| {
                ns.relations
                    .values()
                    .flatten()
                    .find(|t| t.to_string() == key.1)
                    .map(|t| (key.0, t.clone()))
            })
        };
        let appeared = set_b
            .difference(&set_a)
            .filter_map(|k| lookup(b, k))
            .collect();
        let disappeared = set_a
            .difference(&set_b)
            .filter_map(|k| lookup(a, k))
            .collect();

        let links = |s: &SystemSnapshot| -> BTreeSet<(String, String)> {
            s.topology
                .links()
                .map(|l| (l.from.clone(), l.to.clone()))
                .collect()
        };
        let links_a = links(a);
        let links_b = links(b);
        SnapshotDiff {
            from: a.time,
            to: b.time,
            appeared,
            disappeared,
            links_added: links_b.difference(&links_a).cloned().collect(),
            links_removed: links_a.difference(&links_b).cloned().collect(),
        }
    }
}

/// An iterator-style replay cursor over a log store.
///
/// The store holds checkpoint/delta records, so the cursor keeps the
/// *materialized* snapshot at its position cached: stepping over a delta
/// record applies it to the cached snapshot instead of re-walking the chain
/// from the last checkpoint, making a full replay O(records), not
/// O(records × chain length).
#[derive(Debug)]
pub struct Replay<'a> {
    store: &'a LogStore,
    position: usize,
    current: Option<SystemSnapshot>,
}

impl<'a> Replay<'a> {
    /// Start a replay at the first snapshot.
    pub fn new(store: &'a LogStore) -> Self {
        Replay {
            store,
            position: 0,
            current: store.get(0),
        }
    }

    /// The materialized snapshot the cursor currently points at.
    pub fn current(&self) -> Option<&SystemSnapshot> {
        self.current.as_ref()
    }

    /// Advance to the next snapshot, returning the diff from the previous one.
    pub fn step(&mut self) -> Option<SnapshotDiff> {
        let record = self.store.record(self.position + 1)?;
        let current = self.current.as_ref()?;
        let next = match record {
            crate::LogRecord::Checkpoint(snapshot) => snapshot,
            crate::LogRecord::Delta(delta) => {
                let mut next = current.clone();
                delta.apply(&mut next);
                next.stamp_dictionary();
                next
            }
        };
        let diff = SnapshotDiff::between(current, &next);
        self.position += 1;
        self.current = Some(next);
        Some(diff)
    }

    /// Remaining steps.
    pub fn remaining(&self) -> usize {
        self.store.len().saturating_sub(self.position + 1)
    }

    /// Jump to the snapshot closest to (at or before) `time`, as when a user
    /// drags the replay slider — a binary search over the record index.
    pub fn seek(&mut self, time: SimTime) {
        self.position = self.store.index_at(time).unwrap_or(0);
        self.current = self.store.get(self.position);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeSnapshot;
    use nt_runtime::Value;
    use simnet::Topology;

    fn snapshot(secs: u64, costs: &[i64], topo: Topology) -> SystemSnapshot {
        let mut node = NodeSnapshot {
            node: "n1".into(),
            ..Default::default()
        };
        node.relations.insert(
            "cost".into(),
            costs
                .iter()
                .map(|c| Tuple::new("cost", vec![Value::addr("n1"), Value::Int(*c)]))
                .collect(),
        );
        let mut snap = SystemSnapshot {
            time: SimTime::from_secs(secs),
            topology: topo,
            ..Default::default()
        };
        snap.nodes.insert("n1".into(), node);
        snap
    }

    #[test]
    fn diff_detects_tuple_and_link_changes() {
        let a = snapshot(1, &[1, 2], Topology::line(3));
        let b = snapshot(2, &[2, 3], Topology::line(2));
        let diff = SnapshotDiff::between(&a, &b);
        assert_eq!(diff.appeared.len(), 1);
        assert_eq!(diff.disappeared.len(), 1);
        assert_eq!(diff.links_removed.len(), 2, "n2<->n3 disappeared");
        assert!(diff.links_added.is_empty());
        assert!(!diff.is_empty());
    }

    #[test]
    fn replay_walks_snapshots_in_order() {
        let mut store = LogStore::new();
        store.add(snapshot(1, &[1], Topology::line(2)));
        store.add(snapshot(2, &[1, 2], Topology::line(2)));
        store.add(snapshot(3, &[2], Topology::line(2)));
        let mut replay = Replay::new(&store);
        assert_eq!(replay.remaining(), 2);
        let d1 = replay.step().unwrap();
        assert_eq!(d1.appeared.len(), 1);
        let d2 = replay.step().unwrap();
        assert_eq!(d2.disappeared.len(), 1);
        assert!(replay.step().is_none());
    }

    #[test]
    fn seek_moves_to_the_snapshot_before_a_time() {
        let mut store = LogStore::new();
        store.add(snapshot(1, &[1], Topology::line(2)));
        store.add(snapshot(5, &[2], Topology::line(2)));
        store.add(snapshot(9, &[3], Topology::line(2)));
        let mut replay = Replay::new(&store);
        replay.seek(SimTime::from_secs(6));
        assert_eq!(replay.current().unwrap().time, SimTime::from_secs(5));
        replay.seek(SimTime::from_secs(0));
        assert_eq!(replay.current().unwrap().time, SimTime::from_secs(1));
    }

    #[test]
    fn identical_snapshots_produce_an_empty_diff() {
        let a = snapshot(1, &[1], Topology::line(2));
        let b = snapshot(2, &[1], Topology::line(2));
        assert!(SnapshotDiff::between(&a, &b).is_empty());
    }
}
