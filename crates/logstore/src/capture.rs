//! The incremental capture path.
//!
//! [`SnapshotCapturer`] turns a stream of full [`SystemSnapshot`] captures
//! into the checkpoint + delta record stream the log stores: the first
//! capture (and every `checkpoint_every`-th after it) becomes a full
//! [`LogRecord::Checkpoint`]; every other capture becomes a
//! [`LogRecord::Delta`] against the previous capture. The capturer also
//! tracks the interner *watermark* at each capture, so a delta's dictionary
//! diff ships exactly the symbols minted between the two captures — nothing
//! the previous upload already carried, and nothing some unrelated part of
//! the process interned later.

use crate::backend::LogRecord;
use crate::delta::SnapshotDelta;
use crate::snapshot::SystemSnapshot;
use nt_runtime::{Interner, InternerSnapshot};

/// Converts consecutive full captures into checkpoint/delta records.
#[derive(Debug)]
pub struct SnapshotCapturer {
    checkpoint_every: usize,
    since_checkpoint: usize,
    last: Option<SystemSnapshot>,
    watermark: usize,
}

impl SnapshotCapturer {
    /// A capturer that emits a full checkpoint every `checkpoint_every`
    /// captures (the first capture is always a checkpoint). A value of 1
    /// degenerates to the full-snapshot-only behavior; 0 is treated as 1.
    pub fn new(checkpoint_every: usize) -> Self {
        SnapshotCapturer {
            checkpoint_every: checkpoint_every.max(1),
            since_checkpoint: 0,
            last: None,
            watermark: 0,
        }
    }

    /// Convert the next capture into a log record, reading the current
    /// interner watermark. When replaying a pre-captured list (as the bench
    /// does, to feed several backends identical records), use
    /// [`SnapshotCapturer::capture_with_watermark`] with watermarks recorded
    /// at the original capture times instead.
    pub fn capture(&mut self, snapshot: SystemSnapshot) -> LogRecord {
        let watermark = Interner::watermark();
        self.capture_with_watermark(snapshot, watermark)
    }

    /// Convert the next capture into a log record, with `watermark` the
    /// interner length observed when `snapshot` was captured. The delta's
    /// dictionary diff covers `[previous watermark, watermark)`.
    pub fn capture_with_watermark(
        &mut self,
        snapshot: SystemSnapshot,
        watermark: usize,
    ) -> LogRecord {
        let record = match &self.last {
            Some(prev) if self.since_checkpoint < self.checkpoint_every => {
                let fresh = watermark.saturating_sub(self.watermark);
                let mut dict_diff = Interner::snapshot().diff_since(self.watermark);
                dict_diff.strings.truncate(fresh);
                self.since_checkpoint += 1;
                LogRecord::Delta(SnapshotDelta::between(prev, &snapshot, dict_diff))
            }
            _ => {
                self.since_checkpoint = 1;
                LogRecord::Checkpoint(snapshot.clone())
            }
        };
        self.watermark = watermark.max(self.watermark);
        self.last = Some(snapshot);
        record
    }

    /// The snapshot of the most recent capture, if any.
    pub fn last(&self) -> Option<&SystemSnapshot> {
        self.last.as_ref()
    }

    /// The interner watermark recorded at the most recent capture.
    pub fn watermark(&self) -> usize {
        self.watermark
    }
}

/// The dictionary slice minted between two watermarks of the process intern
/// pool (a convenience over [`InternerSnapshot::diff_since`] + truncation).
pub fn dict_diff_between(from: usize, to: usize) -> InternerSnapshot {
    let mut diff = Interner::snapshot().diff_since(from);
    diff.strings.truncate(to.saturating_sub(from));
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RecordKind;
    use simnet::SimTime;

    fn snapshot_at(secs: u64) -> SystemSnapshot {
        SystemSnapshot {
            time: SimTime::from_secs(secs),
            ..Default::default()
        }
    }

    #[test]
    fn first_capture_and_every_nth_are_checkpoints() {
        let mut cap = SnapshotCapturer::new(3);
        let kinds: Vec<RecordKind> = (0..7).map(|i| cap.capture(snapshot_at(i)).kind()).collect();
        use RecordKind::{Checkpoint as C, Delta as D};
        assert_eq!(kinds, vec![C, D, D, C, D, D, C]);
    }

    #[test]
    fn checkpoint_every_one_emits_only_checkpoints() {
        let mut cap = SnapshotCapturer::new(1);
        for i in 0..4 {
            assert_eq!(cap.capture(snapshot_at(i)).kind(), RecordKind::Checkpoint);
        }
    }

    #[test]
    fn delta_dict_diff_is_empty_when_no_symbols_were_minted() {
        let mut cap = SnapshotCapturer::new(8);
        let wm = Interner::watermark();
        cap.capture_with_watermark(snapshot_at(1), wm);
        let record = cap.capture_with_watermark(snapshot_at(2), wm);
        let LogRecord::Delta(delta) = record else {
            panic!("second capture must be a delta");
        };
        assert!(delta.dict_diff.is_empty());
        assert_eq!(LogRecord::Delta(delta).dict_bytes(), 0);
    }
}
