//! The pluggable storage layer underneath [`crate::LogStore`].
//!
//! The Log Store of Section 2.3 is an append-only sequence of records — full
//! [`SystemSnapshot`] checkpoints interleaved with [`SnapshotDelta`]s that
//! carry only what changed since the previous capture. *Where* those records
//! live is a [`LogBackend`] decision: in memory ([`MemBackend`]), in
//! append-only segment files ([`crate::SegmentFileBackend`]), or in a page/KV
//! layout ([`crate::KvBackend`]). The façade materializes point-in-time
//! snapshots from checkpoint + delta chains regardless of the backend.

use crate::delta::SnapshotDelta;
use crate::snapshot::SystemSnapshot;
use serde::{Deserialize, Serialize};
use simnet::SimTime;

/// One record of the log: a full checkpoint or an incremental delta against
/// the previous record's materialized state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A full system snapshot (self-contained recovery point).
    Checkpoint(SystemSnapshot),
    /// The changes since the previous record's materialized snapshot.
    Delta(SnapshotDelta),
}

impl LogRecord {
    /// The capture time the record is stamped with.
    pub fn time(&self) -> SimTime {
        match self {
            LogRecord::Checkpoint(s) => s.time,
            LogRecord::Delta(d) => d.time,
        }
    }

    /// The record's kind tag (cheap to index without decoding the payload).
    pub fn kind(&self) -> RecordKind {
        match self {
            LogRecord::Checkpoint(_) => RecordKind::Checkpoint,
            LogRecord::Delta(_) => RecordKind::Delta,
        }
    }

    /// Upload cost of shipping this record to the central store.
    pub fn upload_bytes(&self) -> usize {
        match self {
            LogRecord::Checkpoint(s) => s.upload_bytes(),
            LogRecord::Delta(d) => d.upload_bytes(),
        }
    }

    /// The dictionary bytes this record carries: the full stamped dictionary
    /// for a checkpoint, only the symbols minted since the last capture for
    /// a delta. Deltas' dictionary cost goes to zero once the system stops
    /// minting new names — the "sublinear after warmup" property.
    pub fn dict_bytes(&self) -> usize {
        match self {
            LogRecord::Checkpoint(s) => s.dictionary.wire_size(),
            LogRecord::Delta(d) => d.dict_diff.wire_size(),
        }
    }
}

/// The kind of a [`LogRecord`], kept in every backend's in-memory index so
/// chain walks (find the nearest checkpoint at or before an index) never
/// decode record payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordKind {
    /// A full snapshot.
    Checkpoint,
    /// An incremental delta.
    Delta,
}

/// What a compaction pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CompactionStats {
    /// Backend storage footprint before the pass.
    pub bytes_before: usize,
    /// Footprint after the pass.
    pub bytes_after: usize,
    /// Live records carried across the pass (compaction never drops a
    /// record — every `at(time)` answer is preserved).
    pub records: usize,
}

/// A storage backend for the log: an ordered sequence of [`LogRecord`]s.
///
/// Backends keep records in capture-time order (ties broken by arrival) and
/// maintain an in-memory `(time, kind)` index so `at` is a binary search and
/// chain walks never touch the payload encoding. `append` inserts at the
/// position its time dictates; the [`crate::LogStore`] façade enforces the
/// chain invariants (deltas append at the end, checkpoints never split an
/// existing checkpoint→delta chain) before calling in.
pub trait LogBackend: std::fmt::Debug {
    /// A short name for reports ("mem", "segment_file", "kv").
    fn name(&self) -> &'static str;

    /// Insert a record at the position its capture time dictates (records
    /// with equal times keep arrival order).
    fn append(&mut self, record: LogRecord);

    /// Decode the record at a logical index.
    fn get(&self, index: usize) -> Option<LogRecord>;

    /// Capture times of every record, in logical order.
    fn time_index(&self) -> &[SimTime];

    /// Record kinds, in logical order (parallel to [`Self::time_index`]).
    fn kind_index(&self) -> &[RecordKind];

    /// Number of stored records.
    fn len(&self) -> usize {
        self.time_index().len()
    }

    /// True when no record is stored.
    fn is_empty(&self) -> bool {
        self.time_index().is_empty()
    }

    /// Index of the latest record captured at or before `time`
    /// (`partition_point` binary search over the time index).
    fn at(&self, time: SimTime) -> Option<usize> {
        self.time_index()
            .partition_point(|t| *t <= time)
            .checked_sub(1)
    }

    /// Iterate over every record in logical order.
    fn iter(&self) -> Box<dyn Iterator<Item = LogRecord> + '_> {
        Box::new((0..self.len()).filter_map(move |i| self.get(i)))
    }

    /// Push buffered writes to durable storage (no-op for volatile backends).
    fn flush(&mut self) {}

    /// Reclaim dead storage (truncated tails, page padding, superseded
    /// segments) without changing any `get`/`at` answer.
    fn compact(&mut self) -> CompactionStats;

    /// Current storage footprint in bytes.
    fn storage_bytes(&self) -> usize;
}

/// The default backend: records held in a `Vec`, exactly the pre-refactor
/// behavior of `LogStore`'s internal `Vec<SystemSnapshot>`.
#[derive(Debug, Default)]
pub struct MemBackend {
    records: Vec<LogRecord>,
    times: Vec<SimTime>,
    kinds: Vec<RecordKind>,
}

impl MemBackend {
    /// Create an empty in-memory backend.
    pub fn new() -> Self {
        MemBackend::default()
    }
}

impl LogBackend for MemBackend {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn append(&mut self, record: LogRecord) {
        let time = record.time();
        let pos = self.times.partition_point(|t| *t <= time);
        self.times.insert(pos, time);
        self.kinds.insert(pos, record.kind());
        self.records.insert(pos, record);
    }

    fn get(&self, index: usize) -> Option<LogRecord> {
        self.records.get(index).cloned()
    }

    fn time_index(&self) -> &[SimTime] {
        &self.times
    }

    fn kind_index(&self) -> &[RecordKind] {
        &self.kinds
    }

    fn compact(&mut self) -> CompactionStats {
        let bytes = self.storage_bytes();
        CompactionStats {
            bytes_before: bytes,
            bytes_after: bytes,
            records: self.records.len(),
        }
    }

    fn storage_bytes(&self) -> usize {
        self.records.iter().map(LogRecord::upload_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint_at(secs: u64) -> LogRecord {
        LogRecord::Checkpoint(SystemSnapshot {
            time: SimTime::from_secs(secs),
            ..Default::default()
        })
    }

    #[test]
    fn mem_backend_keeps_records_in_time_order() {
        let mut b = MemBackend::new();
        b.append(checkpoint_at(10));
        b.append(checkpoint_at(5));
        b.append(checkpoint_at(7));
        let secs: Vec<u64> = b
            .time_index()
            .iter()
            .map(|t| t.as_micros() / 1_000_000)
            .collect();
        assert_eq!(secs, vec![5, 7, 10]);
        assert_eq!(b.get(0).unwrap().time(), SimTime::from_secs(5));
    }

    #[test]
    fn at_is_a_binary_search_over_the_time_index() {
        let mut b = MemBackend::new();
        for s in [2, 4, 6, 8] {
            b.append(checkpoint_at(s));
        }
        assert_eq!(b.at(SimTime::from_secs(5)), Some(1));
        assert_eq!(b.at(SimTime::from_secs(8)), Some(3));
        assert_eq!(b.at(SimTime::from_secs(1)), None);
        assert_eq!(b.at(SimTime::from_secs(99)), Some(3));
    }

    #[test]
    fn mem_compaction_is_a_noop_that_reports_the_footprint() {
        let mut b = MemBackend::new();
        b.append(checkpoint_at(1));
        let stats = b.compact();
        assert_eq!(stats.bytes_before, stats.bytes_after);
        assert_eq!(stats.records, 1);
    }
}
