//! Snapshot types.

use nt_runtime::{Addr, Database, Tuple};
use provenance::{ProvGraph, ProvStoreStats, ProvenanceSystem};
use serde::{Deserialize, Serialize};
use simnet::{SimTime, Topology, TrafficStats};
use std::collections::BTreeMap;

/// One node's captured state at a point in (simulated) time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// Node name.
    pub node: Addr,
    /// Visible relations and their tuples (internal outbox relations are
    /// excluded).
    pub relations: BTreeMap<String, Vec<Tuple>>,
    /// Size of the node's provenance partition.
    pub provenance: ProvStoreStats,
}

impl NodeSnapshot {
    /// Capture a node's state from its runtime database and provenance store.
    pub fn capture(node: &str, db: &Database, provenance: &ProvenanceSystem) -> Self {
        let mut relations = BTreeMap::new();
        for table in db.tables() {
            if table.schema.name.starts_with("__out::") || table.is_empty() {
                continue;
            }
            relations.insert(table.schema.name.clone(), table.tuples());
        }
        NodeSnapshot {
            node: node.to_string(),
            relations,
            provenance: provenance
                .store(node)
                .map(|s| s.stats())
                .unwrap_or_default(),
        }
    }

    /// Total number of tuples in the snapshot.
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(Vec::len).sum()
    }

    /// Approximate serialized size in bytes — the cost of uploading this
    /// snapshot to the central log store.
    pub fn upload_bytes(&self) -> usize {
        let tuples: usize = self
            .relations
            .values()
            .flat_map(|ts| ts.iter().map(Tuple::wire_size))
            .sum();
        tuples + 64
    }
}

/// A whole-system snapshot: every node plus the topology and the centralized
/// provenance graph, stamped with the capture time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Capture time.
    pub time: SimTime,
    /// Per-node snapshots, keyed by node name.
    pub nodes: BTreeMap<Addr, NodeSnapshot>,
    /// The network topology at capture time.
    pub topology: Topology,
    /// The assembled provenance graph (what the provenance visualizer shows).
    pub graph: ProvGraph,
    /// Cumulative traffic counters at capture time (the "bandwidth
    /// utilization" the paper mentions).
    pub traffic: TrafficStats,
}

impl SystemSnapshot {
    /// Total tuples across every node.
    pub fn tuple_count(&self) -> usize {
        self.nodes.values().map(NodeSnapshot::tuple_count).sum()
    }

    /// Total upload size of all per-node snapshots.
    pub fn upload_bytes(&self) -> usize {
        self.nodes.values().map(NodeSnapshot::upload_bytes).sum()
    }

    /// All tuples of a relation across nodes (sorted, for comparisons).
    pub fn relation(&self, relation: &str) -> Vec<(Addr, Tuple)> {
        let mut out = Vec::new();
        for (node, snap) in &self.nodes {
            if let Some(tuples) = snap.relations.get(relation) {
                for t in tuples {
                    out.push((node.clone(), t.clone()));
                }
            }
        }
        out.sort_by_key(|(n, t)| (n.clone(), t.to_string()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{CompiledProgram, EngineConfig, NodeEngine, Value};
    use std::sync::Arc;

    fn engine_with_links() -> NodeEngine {
        let program =
            Arc::new(CompiledProgram::from_source("r1 cost(@S,D,C) :- link(@S,D,C).").unwrap());
        let mut e = NodeEngine::new(program, EngineConfig::new("n1"));
        e.insert_base(Tuple::new(
            "link",
            vec![Value::addr("n1"), Value::addr("n2"), Value::Int(3)],
        ));
        e.run();
        e
    }

    #[test]
    fn node_snapshot_captures_visible_relations() {
        let e = engine_with_links();
        let prov = ProvenanceSystem::new(["n1"]);
        let snap = NodeSnapshot::capture("n1", e.database(), &prov);
        assert_eq!(snap.tuple_count(), 2, "link + cost");
        assert!(snap.relations.contains_key("link"));
        assert!(snap.relations.contains_key("cost"));
        assert!(snap.upload_bytes() > 0);
    }

    #[test]
    fn system_snapshot_aggregates_nodes() {
        let e = engine_with_links();
        let prov = ProvenanceSystem::new(["n1"]);
        let mut snapshot = SystemSnapshot {
            time: SimTime::from_secs(3),
            ..Default::default()
        };
        snapshot.nodes.insert(
            "n1".into(),
            NodeSnapshot::capture("n1", e.database(), &prov),
        );
        assert_eq!(snapshot.tuple_count(), 2);
        assert_eq!(snapshot.relation("cost").len(), 1);
        assert_eq!(snapshot.relation("nope").len(), 0);
        assert!(snapshot.upload_bytes() >= snapshot.nodes["n1"].upload_bytes());
    }
}
