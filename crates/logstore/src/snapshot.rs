//! Snapshot types.

use nt_runtime::{Addr, Database, InternerSnapshot, Tuple, Value};
use provenance::{ProvGraph, ProvStoreStats, ProvenanceSystem};
use serde::{Deserialize, Serialize};
use simnet::{SimTime, Topology, TrafficStats};
use std::collections::{BTreeMap, BTreeSet};

/// One node's captured state at a point in (simulated) time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// Node name.
    pub node: Addr,
    /// Visible relations and their tuples (internal outbox relations are
    /// excluded).
    pub relations: BTreeMap<String, Vec<Tuple>>,
    /// Size of the node's provenance partition.
    pub provenance: ProvStoreStats,
}

/// The canonical intra-relation tuple order used by captures and delta
/// application. The debug rendering distinguishes value variants (`Str` vs
/// `Addr`) that display identically, so the key is injective enough to make
/// "same multiset of tuples" imply "same vector" — the property the
/// bit-identical delta materialization relies on.
pub fn tuple_sort_key(t: &Tuple) -> String {
    format!("{t:?}")
}

impl NodeSnapshot {
    /// Capture a node's state from its runtime database and provenance
    /// store. Tuples are stored in the canonical [`tuple_sort_key`] order so
    /// that a delta applied to the previous capture reproduces this one
    /// bit-for-bit regardless of table slot order.
    pub fn capture(node: &str, db: &Database, provenance: &ProvenanceSystem) -> Self {
        let mut relations = BTreeMap::new();
        for table in db.tables() {
            if table.schema.name.starts_with("__out::") || table.is_empty() {
                continue;
            }
            let mut tuples = table.tuples();
            tuples.sort_by_key(tuple_sort_key);
            relations.insert(table.schema.name.clone(), tuples);
        }
        NodeSnapshot {
            node: node.into(),
            relations,
            provenance: provenance
                .store(node)
                .map(|s| s.stats())
                .unwrap_or_default(),
        }
    }

    /// Total number of tuples in the snapshot.
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(Vec::len).sum()
    }

    /// Approximate serialized size in bytes — the cost of uploading this
    /// snapshot to the central log store.
    pub fn upload_bytes(&self) -> usize {
        let tuples: usize = self
            .relations
            .values()
            .flat_map(|ts| ts.iter().map(Tuple::wire_size))
            .sum();
        tuples + 64
    }
}

/// A whole-system snapshot: every node plus the topology and the centralized
/// provenance graph, stamped with the capture time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Capture time.
    pub time: SimTime,
    /// Per-node snapshots, keyed by node name.
    pub nodes: BTreeMap<Addr, NodeSnapshot>,
    /// The network topology at capture time.
    pub topology: Topology,
    /// The assembled provenance graph (what the provenance visualizer shows).
    pub graph: ProvGraph,
    /// Cumulative traffic counters at capture time (the "bandwidth
    /// utilization" the paper mentions).
    pub traffic: TrafficStats,
    /// The identifier dictionary: every interned node/rule/relation name the
    /// snapshot's fixed-width ids refer to. Carried **once per snapshot** —
    /// individual tuples, prov entries and messages ship 4-byte ids only.
    pub dictionary: InternerSnapshot,
}

impl SystemSnapshot {
    /// Stamp the snapshot with its identifier dictionary: exactly the node,
    /// relation and rule names referenced by the snapshot's contents (call
    /// after filling in the per-node state and the graph). Deliberately not
    /// the whole process intern pool — the upload cost must depend only on
    /// the snapshot, not on what else the process has interned.
    pub fn stamp_dictionary(&mut self) {
        self.dictionary = self.referenced_dictionary();
    }

    /// The dictionary this snapshot's contents require: every node, relation
    /// and rule name reachable from the per-node state and the graph.
    fn referenced_dictionary(&self) -> InternerSnapshot {
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for (node, snap) in &self.nodes {
            names.insert(node.as_str());
            for (relation, tuples) in &snap.relations {
                names.insert(relation);
                for t in tuples {
                    collect_value_names(&t.values, &mut names);
                }
            }
        }
        for vertex in self.graph.vertices.values() {
            match vertex {
                provenance::ProvVertex::Tuple { tuple, home, .. } => {
                    names.insert(home.as_str());
                    if let Some(t) = tuple {
                        names.insert(t.relation.as_str());
                        collect_value_names(&t.values, &mut names);
                    }
                }
                provenance::ProvVertex::RuleExec { rule, node, .. } => {
                    names.insert(rule.as_str());
                    names.insert(node.as_str());
                }
            }
        }
        InternerSnapshot {
            strings: names.into_iter().map(str::to_string).collect(),
        }
    }

    /// Restore the snapshot's dictionary into the local intern pool (call
    /// after loading a snapshot from disk, before resolving ids).
    pub fn restore_dictionary(&self) {
        self.dictionary.restore();
    }

    /// Total tuples across every node.
    pub fn tuple_count(&self) -> usize {
        self.nodes.values().map(NodeSnapshot::tuple_count).sum()
    }

    /// Total upload size: all per-node snapshots, the topology, the
    /// provenance graph, the traffic counters, plus the one-time dictionary
    /// shipped alongside them. An unstamped snapshot is priced as if its
    /// dictionary had been stamped — the cost is derived state, so
    /// accounting cannot be silently skipped by forgetting
    /// [`SystemSnapshot::stamp_dictionary`].
    pub fn upload_bytes(&self) -> usize {
        let dict_bytes = if self.dictionary.is_empty() {
            self.referenced_dictionary().wire_size()
        } else {
            self.dictionary.wire_size()
        };
        self.nodes
            .values()
            .map(NodeSnapshot::upload_bytes)
            .sum::<usize>()
            + self.topology.wire_size()
            + self.graph.wire_size()
            + self.traffic.wire_size()
            + dict_bytes
    }

    /// All tuples of a relation across nodes (sorted, for comparisons).
    pub fn relation(&self, relation: &str) -> Vec<(Addr, Tuple)> {
        let mut out = Vec::new();
        for (node, snap) in &self.nodes {
            if let Some(tuples) = snap.relations.get(relation) {
                for t in tuples {
                    out.push((*node, t.clone()));
                }
            }
        }
        out.sort_by_key(|(n, t)| (*n, t.to_string()));
        out
    }
}

/// Collect the interned address names appearing in a value tree (plain `Str`
/// values are not interned and ship inline, so they are not dictionary
/// entries).
fn collect_value_names<'a>(values: &'a [Value], out: &mut BTreeSet<&'a str>) {
    for v in values {
        match v {
            Value::Addr(a) => {
                out.insert(a.as_str());
            }
            Value::List(l) => collect_value_names(l, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{CompiledProgram, EngineConfig, NodeEngine, Value};
    use std::sync::Arc;

    fn engine_with_links() -> NodeEngine {
        let program =
            Arc::new(CompiledProgram::from_source("r1 cost(@S,D,C) :- link(@S,D,C).").unwrap());
        let mut e = NodeEngine::new(program, EngineConfig::new("n1"));
        e.insert_base(Tuple::new(
            "link",
            vec![Value::addr("n1"), Value::addr("n2"), Value::Int(3)],
        ));
        e.run();
        e
    }

    #[test]
    fn node_snapshot_captures_visible_relations() {
        let e = engine_with_links();
        let prov = ProvenanceSystem::new(["n1"]);
        let snap = NodeSnapshot::capture("n1", e.database(), &prov);
        assert_eq!(snap.tuple_count(), 2, "link + cost");
        assert!(snap.relations.contains_key("link"));
        assert!(snap.relations.contains_key("cost"));
        assert!(snap.upload_bytes() > 0);
    }

    #[test]
    fn system_snapshot_aggregates_nodes() {
        let e = engine_with_links();
        let prov = ProvenanceSystem::new(["n1"]);
        let mut snapshot = SystemSnapshot {
            time: SimTime::from_secs(3),
            ..Default::default()
        };
        snapshot.nodes.insert(
            "n1".into(),
            NodeSnapshot::capture("n1", e.database(), &prov),
        );
        assert_eq!(snapshot.tuple_count(), 2);
        assert_eq!(snapshot.relation("cost").len(), 1);
        assert_eq!(snapshot.relation("nope").len(), 0);
        assert!(snapshot.upload_bytes() >= snapshot.nodes[&Addr::new("n1")].upload_bytes());
    }
}
