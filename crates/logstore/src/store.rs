//! The central Log Store.

use crate::snapshot::SystemSnapshot;
use serde::{Deserialize, Serialize};
use simnet::SimTime;

/// The append-only store of system snapshots that lives at the visualization
/// node. Snapshots are kept in capture-time order; the store tracks how many
/// bytes have been uploaded to it (the centralization cost of Section 2.3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogStore {
    snapshots: Vec<SystemSnapshot>,
    uploaded_bytes: u64,
}

impl LogStore {
    /// Create an empty store.
    pub fn new() -> Self {
        LogStore::default()
    }

    /// Append a snapshot (snapshots must arrive in non-decreasing time
    /// order; out-of-order snapshots are inserted at the right position).
    pub fn add(&mut self, snapshot: SystemSnapshot) {
        self.uploaded_bytes += snapshot.upload_bytes() as u64;
        let pos = self.snapshots.partition_point(|s| s.time <= snapshot.time);
        self.snapshots.insert(pos, snapshot);
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when no snapshot is stored.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Total bytes uploaded to the store.
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded_bytes
    }

    /// All snapshots in time order.
    pub fn snapshots(&self) -> &[SystemSnapshot] {
        &self.snapshots
    }

    /// The snapshot at a given index.
    pub fn get(&self, index: usize) -> Option<&SystemSnapshot> {
        self.snapshots.get(index)
    }

    /// The latest snapshot taken at or before `time` (what the visualizer
    /// shows when the user pauses the replay at `time`).
    pub fn at(&self, time: SimTime) -> Option<&SystemSnapshot> {
        self.snapshots.iter().rev().find(|s| s.time <= time)
    }

    /// Serialize the whole store to pretty JSON (the on-disk format consumed
    /// by the visualizer).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Load a store from JSON. Every snapshot's identifier dictionary is
    /// restored into the local intern pool so the fixed-width ids inside the
    /// snapshots resolve.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        let store: Self = serde_json::from_str(json)?;
        for snap in &store.snapshots {
            snap.restore_dictionary();
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_at(secs: u64) -> SystemSnapshot {
        SystemSnapshot {
            time: SimTime::from_secs(secs),
            ..Default::default()
        }
    }

    #[test]
    fn snapshots_are_kept_in_time_order() {
        let mut store = LogStore::new();
        store.add(snapshot_at(10));
        store.add(snapshot_at(5));
        store.add(snapshot_at(7));
        let times: Vec<u64> = store
            .snapshots()
            .iter()
            .map(|s| s.time.as_micros() / 1_000_000)
            .collect();
        assert_eq!(times, vec![5, 7, 10]);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn at_returns_latest_snapshot_before_time() {
        let mut store = LogStore::new();
        store.add(snapshot_at(5));
        store.add(snapshot_at(10));
        assert_eq!(
            store.at(SimTime::from_secs(7)).unwrap().time,
            SimTime::from_secs(5)
        );
        assert_eq!(
            store.at(SimTime::from_secs(10)).unwrap().time,
            SimTime::from_secs(10)
        );
        assert!(store.at(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn json_round_trip() {
        let mut store = LogStore::new();
        store.add(snapshot_at(5));
        let json = store.to_json().unwrap();
        let loaded = LogStore::from_json(&json).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.snapshots()[0].time, SimTime::from_secs(5));
    }

    #[test]
    fn upload_bytes_accumulate() {
        let mut store = LogStore::new();
        assert_eq!(store.uploaded_bytes(), 0);
        store.add(snapshot_at(1));
        assert_eq!(store.uploaded_bytes(), 0, "empty snapshot uploads nothing");
        assert!(store.get(0).is_some());
        assert!(store.get(5).is_none());
    }
}
