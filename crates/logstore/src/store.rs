//! The central Log Store.

use crate::backend::{CompactionStats, LogBackend, LogRecord, MemBackend, RecordKind};
use crate::snapshot::SystemSnapshot;
use serde::{Deserialize, Serialize};
use simnet::SimTime;
use std::collections::BTreeSet;

/// The store of system snapshots that lives at the visualization node,
/// now a thin façade over a pluggable [`LogBackend`]. Records are full
/// checkpoints or incremental deltas; every read (`get`, `at`, `snapshots`)
/// *materializes* a full [`SystemSnapshot`] by walking back to the nearest
/// checkpoint and applying the delta chain forward, so callers never see the
/// encoding. The store tracks how many bytes have been uploaded to it (the
/// centralization cost of Section 2.3), with delta dictionary bytes broken
/// out separately.
#[derive(Debug)]
pub struct LogStore {
    backend: Box<dyn LogBackend>,
    uploaded_bytes: u64,
    delta_dict_bytes: u64,
    checkpoints: usize,
    deltas: usize,
}

impl Default for LogStore {
    fn default() -> Self {
        LogStore::new()
    }
}

impl LogStore {
    /// An empty store over the default in-memory backend.
    pub fn new() -> Self {
        LogStore::with_backend(Box::new(MemBackend::new()))
    }

    /// An empty store over an explicit backend.
    pub fn with_backend(backend: Box<dyn LogBackend>) -> Self {
        LogStore {
            backend,
            uploaded_bytes: 0,
            delta_dict_bytes: 0,
            checkpoints: 0,
            deltas: 0,
        }
    }

    /// The backend's short name ("mem", "segment_file", "kv").
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Append a full snapshot as a checkpoint record (snapshots must arrive
    /// in non-decreasing time order; out-of-order snapshots are inserted at
    /// the right position). This is the pre-incremental upload path and
    /// remains the API for callers that do not run a
    /// [`crate::SnapshotCapturer`].
    pub fn add(&mut self, snapshot: SystemSnapshot) {
        self.append_record(LogRecord::Checkpoint(snapshot));
    }

    /// Append a checkpoint or delta record, charging its upload cost.
    ///
    /// Chain invariants are enforced here, once, for every backend: a delta
    /// only makes sense appended at the end (it diffs against the previous
    /// record's materialized state), and a late-arriving checkpoint may slot
    /// in anywhere *except* immediately before a delta — that would splice a
    /// foreign base under an existing chain and corrupt every materialization
    /// after it.
    pub fn append_record(&mut self, record: LogRecord) {
        let time = record.time();
        let pos = self.backend.time_index().partition_point(|t| *t <= time);
        match record.kind() {
            RecordKind::Delta => {
                assert!(
                    pos == self.backend.len() && !self.backend.is_empty(),
                    "delta records must append at the end of a non-empty log \
                     (delta at {time:?} would land at {pos}/{})",
                    self.backend.len()
                );
                self.deltas += 1;
                self.delta_dict_bytes += record.dict_bytes() as u64;
            }
            RecordKind::Checkpoint => {
                assert!(
                    self.backend.kind_index().get(pos) != Some(&RecordKind::Delta),
                    "checkpoint at {time:?} would split an existing checkpoint→delta chain"
                );
                self.checkpoints += 1;
            }
        }
        self.uploaded_bytes += record.upload_bytes() as u64;
        self.backend.append(record);
    }

    /// Number of stored records (each materializes one snapshot).
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True when no record is stored.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Total bytes uploaded to the store.
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded_bytes
    }

    /// Dictionary bytes carried by delta records alone — the incremental
    /// dictionary cost. Sublinear in snapshot count after warmup: once the
    /// system stops minting names, every further delta ships zero.
    pub fn delta_dict_bytes(&self) -> u64 {
        self.delta_dict_bytes
    }

    /// Number of checkpoint records.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints
    }

    /// Number of delta records.
    pub fn delta_count(&self) -> usize {
        self.deltas
    }

    /// The backend's current storage footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.backend.storage_bytes()
    }

    /// Push buffered writes to durable storage.
    pub fn flush(&mut self) {
        self.backend.flush();
    }

    /// Reclaim dead backend storage without changing any answer.
    pub fn compact(&mut self) -> CompactionStats {
        self.backend.compact()
    }

    /// The raw record at an index (checkpoint or delta, undecoded by any
    /// materialization) — what the replay timeline and the bench accounting
    /// read.
    pub fn record(&self, index: usize) -> Option<LogRecord> {
        self.backend.get(index)
    }

    /// Every record in time order.
    pub fn records(&self) -> Vec<LogRecord> {
        self.backend.iter().collect()
    }

    /// All snapshots in time order, materialized.
    pub fn snapshots(&self) -> Vec<SystemSnapshot> {
        (0..self.len()).filter_map(|i| self.get(i)).collect()
    }

    /// The snapshot at a given index, materialized from the nearest
    /// checkpoint at or before it plus the delta chain between them.
    pub fn get(&self, index: usize) -> Option<SystemSnapshot> {
        if index >= self.len() {
            return None;
        }
        let kinds = self.backend.kind_index();
        let base = (0..=index)
            .rev()
            .find(|i| kinds[*i] == RecordKind::Checkpoint)?;
        let Some(LogRecord::Checkpoint(mut snapshot)) = self.backend.get(base) else {
            return None;
        };
        for i in base + 1..=index {
            let LogRecord::Delta(delta) = self.backend.get(i)? else {
                return None;
            };
            delta.apply(&mut snapshot);
        }
        if base != index {
            snapshot.stamp_dictionary();
        }
        Some(snapshot)
    }

    /// The index of the latest record captured at or before `time` — a
    /// `partition_point` binary search over the backend's time index.
    pub fn index_at(&self, time: SimTime) -> Option<usize> {
        self.backend.at(time)
    }

    /// The latest snapshot taken at or before `time` (what the visualizer
    /// shows when the user pauses the replay at `time`), materialized.
    pub fn at(&self, time: SimTime) -> Option<SystemSnapshot> {
        self.get(self.index_at(time)?)
    }

    /// Serialize the whole store to pretty JSON (the on-disk format consumed
    /// by the visualizer). Snapshots are materialized, so the export is
    /// backend- and encoding-independent — exactly what the pre-incremental
    /// format contained.
    pub fn to_json(&self) -> serde_json::Result<String> {
        let doc = StoreJson {
            snapshots: self.snapshots(),
            uploaded_bytes: self.uploaded_bytes,
        };
        serde_json::to_string_pretty(&doc)
    }

    /// Load a store (in-memory backend) from JSON. The snapshots'
    /// identifier dictionaries are restored into the local intern pool so
    /// the fixed-width ids inside them resolve — each dictionary entry
    /// exactly once, in time order, skipping symbols the pool already holds,
    /// rather than re-walking every snapshot's full dictionary.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        let doc: StoreJson = serde_json::from_str(json)?;
        let mut by_time: Vec<&SystemSnapshot> = doc.snapshots.iter().collect();
        by_time.sort_by_key(|s| s.time);
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for snap in by_time {
            for s in &snap.dictionary.strings {
                if seen.insert(s) && nt_runtime::Sym::lookup(s).is_none() {
                    nt_runtime::Sym::new(s);
                }
            }
        }
        let mut backend = MemBackend::new();
        let mut checkpoints = 0;
        for snap in doc.snapshots {
            backend.append(LogRecord::Checkpoint(snap));
            checkpoints += 1;
        }
        Ok(LogStore {
            backend: Box::new(backend),
            uploaded_bytes: doc.uploaded_bytes,
            delta_dict_bytes: 0,
            checkpoints,
            deltas: 0,
        })
    }
}

/// The stable JSON document shape: materialized snapshots plus the upload
/// counter, unchanged from the pre-backend format.
#[derive(Serialize, Deserialize)]
struct StoreJson {
    snapshots: Vec<SystemSnapshot>,
    uploaded_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::SnapshotCapturer;
    use crate::kv::KvBackend;
    use crate::snapshot::NodeSnapshot;
    use nt_runtime::{InternerSnapshot, Tuple, Value};

    fn snapshot_at(secs: u64) -> SystemSnapshot {
        SystemSnapshot {
            time: SimTime::from_secs(secs),
            ..Default::default()
        }
    }

    fn snapshot_with_costs(secs: u64, costs: &[i64]) -> SystemSnapshot {
        let mut node = NodeSnapshot {
            node: "n1".into(),
            ..Default::default()
        };
        let mut tuples: Vec<Tuple> = costs
            .iter()
            .map(|c| Tuple::new("cost", vec![Value::addr("n1"), Value::Int(*c)]))
            .collect();
        tuples.sort_by_key(crate::snapshot::tuple_sort_key);
        node.relations.insert("cost".into(), tuples);
        let mut snap = snapshot_at(secs);
        snap.nodes.insert("n1".into(), node);
        snap.stamp_dictionary();
        snap
    }

    #[test]
    fn snapshots_are_kept_in_time_order() {
        let mut store = LogStore::new();
        store.add(snapshot_at(10));
        store.add(snapshot_at(5));
        store.add(snapshot_at(7));
        let times: Vec<u64> = store
            .snapshots()
            .iter()
            .map(|s| s.time.as_micros() / 1_000_000)
            .collect();
        assert_eq!(times, vec![5, 7, 10]);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn at_returns_latest_snapshot_before_time() {
        let mut store = LogStore::new();
        store.add(snapshot_at(5));
        store.add(snapshot_at(10));
        assert_eq!(
            store.at(SimTime::from_secs(7)).unwrap().time,
            SimTime::from_secs(5)
        );
        assert_eq!(
            store.at(SimTime::from_secs(10)).unwrap().time,
            SimTime::from_secs(10)
        );
        assert!(store.at(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn json_round_trip() {
        let mut store = LogStore::new();
        store.add(snapshot_at(5));
        let json = store.to_json().unwrap();
        let loaded = LogStore::from_json(&json).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.snapshots()[0].time, SimTime::from_secs(5));
    }

    #[test]
    fn json_round_trip_materializes_delta_records() {
        let mut capturer = SnapshotCapturer::new(2);
        let mut store = LogStore::new();
        for (secs, costs) in [(1, vec![1]), (2, vec![1, 2]), (3, vec![2, 3])] {
            store.append_record(capturer.capture(snapshot_with_costs(secs, &costs)));
        }
        assert!(store.delta_count() > 0);
        let json = store.to_json().unwrap();
        let loaded = LogStore::from_json(&json).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.snapshots(), store.snapshots());
        assert_eq!(loaded.uploaded_bytes(), store.uploaded_bytes());
    }

    #[test]
    fn upload_bytes_accumulate() {
        let mut store = LogStore::new();
        assert_eq!(store.uploaded_bytes(), 0);
        store.add(snapshot_at(1));
        assert_eq!(store.uploaded_bytes(), 0, "empty snapshot uploads nothing");
        assert!(store.get(0).is_some());
        assert!(store.get(5).is_none());
    }

    #[test]
    fn deltas_materialize_through_any_backend() {
        let mut capturer = SnapshotCapturer::new(3);
        let mut store = LogStore::with_backend(Box::new(KvBackend::new()));
        let captures = [
            snapshot_with_costs(1, &[1]),
            snapshot_with_costs(2, &[1, 2]),
            snapshot_with_costs(3, &[2]),
            snapshot_with_costs(4, &[2, 5, 7]),
        ];
        for snap in &captures {
            store.append_record(capturer.capture(snap.clone()));
        }
        assert_eq!(store.backend_name(), "kv");
        assert_eq!(store.checkpoint_count(), 2);
        assert_eq!(store.delta_count(), 2);
        for (i, expected) in captures.iter().enumerate() {
            assert_eq!(store.get(i).as_ref(), Some(expected), "index {i}");
        }
        assert_eq!(
            store.at(SimTime::from_secs(3)).unwrap(),
            captures[2],
            "at() materializes through the delta chain"
        );
    }

    #[test]
    #[should_panic(expected = "delta records must append at the end")]
    fn out_of_order_delta_is_rejected() {
        let mut store = LogStore::new();
        store.add(snapshot_at(10));
        store.append_record(LogRecord::Delta(crate::delta::SnapshotDelta {
            time: SimTime::from_secs(5),
            dict_diff: InternerSnapshot::default(),
            ..Default::default()
        }));
    }

    #[test]
    #[should_panic(expected = "would split an existing checkpoint")]
    fn checkpoint_cannot_split_a_delta_chain() {
        let mut store = LogStore::new();
        store.add(snapshot_with_costs(1, &[1]));
        store.append_record(LogRecord::Delta(crate::delta::SnapshotDelta {
            time: SimTime::from_secs(5),
            ..Default::default()
        }));
        store.add(snapshot_at(3));
    }
}
