//! # logstore — snapshots, the central Log Store and replay
//!
//! "Although NetTrails is designed to execute in a distributed environment,
//! some state needs to be centralized to facilitate the visualization of
//! provenance queries and results. In particular, per-node provenance
//! information and other system state (such as the network topology and
//! bandwidth utilization) can be periodically captured as system snapshots at
//! each node, and then propagated to a central Log Store that resides at the
//! visualization node. These logs are subsequently used for interactive
//! visualization, query, and replay." — NetTrails, Section 2.3.
//!
//! This crate implements exactly that pipeline:
//!
//! * [`NodeSnapshot`] — one node's state at a point in time: its visible
//!   relations, its provenance-store sizes, and simple utilization counters;
//! * [`SystemSnapshot`] — the combined snapshot of every node plus the
//!   topology and the assembled provenance graph;
//! * [`SnapshotDelta`] — the changes between two consecutive captures:
//!   per-node tuple diffs, graph edits, and a *dictionary diff* carrying only
//!   the symbols minted since the previous capture's interner watermark;
//! * [`SnapshotCapturer`] — the capture path that turns full captures into a
//!   checkpoint + delta record stream ([`LogRecord`]);
//! * [`LogBackend`] — the pluggable storage layer: [`MemBackend`] (default,
//!   volatile), [`SegmentFileBackend`] (append-only segment files with
//!   footer indexes, fsync on seal, and truncated-tail recovery on open),
//!   and [`KvBackend`] (page/KV layout keyed by `(epoch, seq)`);
//! * [`LogStore`] — the central store, a thin façade over a backend: reads
//!   materialize full snapshots from checkpoint + delta chains, JSON
//!   (de)serialization and upload-size accounting are unchanged;
//! * [`Replay`] — iteration over the stored snapshots with per-step diffs
//!   (which tuples appeared / disappeared between consecutive snapshots),
//!   which is what the visualizer's replay slider consumes.

pub mod backend;
pub mod capture;
pub mod delta;
pub mod kv;
pub mod replay;
pub mod segment;
pub mod snapshot;
pub mod store;

pub use backend::{CompactionStats, LogBackend, LogRecord, MemBackend, RecordKind};
pub use capture::SnapshotCapturer;
pub use delta::{GraphDelta, NodeDelta, SnapshotDelta};
pub use kv::KvBackend;
pub use replay::{Replay, SnapshotDiff};
pub use segment::SegmentFileBackend;
pub use snapshot::{NodeSnapshot, SystemSnapshot};
pub use store::LogStore;
