//! # logstore — snapshots, the central Log Store and replay
//!
//! "Although NetTrails is designed to execute in a distributed environment,
//! some state needs to be centralized to facilitate the visualization of
//! provenance queries and results. In particular, per-node provenance
//! information and other system state (such as the network topology and
//! bandwidth utilization) can be periodically captured as system snapshots at
//! each node, and then propagated to a central Log Store that resides at the
//! visualization node. These logs are subsequently used for interactive
//! visualization, query, and replay." — NetTrails, Section 2.3.
//!
//! This crate implements exactly that pipeline:
//!
//! * [`NodeSnapshot`] — one node's state at a point in time: its visible
//!   relations, its provenance-store sizes, and simple utilization counters;
//! * [`SystemSnapshot`] — the combined snapshot of every node plus the
//!   topology and the assembled provenance graph;
//! * [`LogStore`] — the central, append-only store of snapshots with JSON
//!   (de)serialization and upload-size accounting;
//! * [`Replay`] — iteration over the stored snapshots with per-step diffs
//!   (which tuples appeared / disappeared between consecutive snapshots),
//!   which is what the visualizer's replay slider consumes.

pub mod replay;
pub mod snapshot;
pub mod store;

pub use replay::{Replay, SnapshotDiff};
pub use snapshot::{NodeSnapshot, SystemSnapshot};
pub use store::LogStore;
