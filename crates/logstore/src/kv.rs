//! Page/KV-style log storage.
//!
//! Records are encoded and chopped into fixed-size pages keyed by
//! `(epoch, seq, page)` — the epoch is the capture time in microseconds, the
//! sequence number disambiguates records within an epoch, and pages hold
//! [`PAGE_SIZE`] bytes each (the last page of a record is zero-padded, as a
//! page store would materialize it). `storage_bytes` therefore counts whole
//! pages; [`KvBackend::compact`] trims the padding off every record's last
//! page, modelling a page store folding its slack.

use crate::backend::{CompactionStats, LogBackend, LogRecord, RecordKind};
use simnet::SimTime;
use std::collections::BTreeMap;

/// Bytes per page.
pub const PAGE_SIZE: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct KvSlot {
    epoch: u64,
    seq: u64,
    byte_len: usize,
    kind: RecordKind,
}

/// The page/KV backend: records as runs of pages in an ordered map.
#[derive(Debug, Default)]
pub struct KvBackend {
    pages: BTreeMap<(u64, u64, u32), Vec<u8>>,
    slots: Vec<KvSlot>,
    times: Vec<SimTime>,
    kinds: Vec<RecordKind>,
    next_seq: u64,
}

impl KvBackend {
    /// Create an empty KV backend.
    pub fn new() -> Self {
        KvBackend::default()
    }

    /// Number of pages currently held.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

impl LogBackend for KvBackend {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn append(&mut self, record: LogRecord) {
        let payload = serde_json::to_string(&record)
            .expect("log records encode to JSON")
            .into_bytes();
        let time = record.time();
        let epoch = time.as_micros();
        let seq = self.next_seq;
        self.next_seq += 1;
        for (page_no, chunk) in payload.chunks(PAGE_SIZE).enumerate() {
            let mut page = chunk.to_vec();
            page.resize(PAGE_SIZE, 0);
            self.pages.insert((epoch, seq, page_no as u32), page);
        }
        let slot = KvSlot {
            epoch,
            seq,
            byte_len: payload.len(),
            kind: record.kind(),
        };
        let pos = self.times.partition_point(|t| *t <= time);
        self.times.insert(pos, time);
        self.kinds.insert(pos, slot.kind);
        self.slots.insert(pos, slot);
    }

    fn get(&self, index: usize) -> Option<LogRecord> {
        let slot = self.slots.get(index)?;
        let mut payload = Vec::with_capacity(slot.byte_len);
        for (_, page) in self
            .pages
            .range((slot.epoch, slot.seq, 0)..=(slot.epoch, slot.seq, u32::MAX))
        {
            payload.extend_from_slice(page);
        }
        payload.truncate(slot.byte_len);
        let text = String::from_utf8(payload).ok()?;
        serde_json::from_str(&text).ok()
    }

    fn time_index(&self) -> &[SimTime] {
        &self.times
    }

    fn kind_index(&self) -> &[RecordKind] {
        &self.kinds
    }

    fn compact(&mut self) -> CompactionStats {
        let bytes_before = self.storage_bytes();
        for slot in &self.slots {
            let last_page = (slot.byte_len.max(1) - 1) / PAGE_SIZE;
            let tail_len = slot.byte_len - last_page * PAGE_SIZE;
            if let Some(page) = self
                .pages
                .get_mut(&(slot.epoch, slot.seq, last_page as u32))
            {
                page.truncate(tail_len);
            }
        }
        CompactionStats {
            bytes_before,
            bytes_after: self.storage_bytes(),
            records: self.slots.len(),
        }
    }

    fn storage_bytes(&self) -> usize {
        self.pages.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SystemSnapshot;

    fn checkpoint_at(secs: u64) -> LogRecord {
        LogRecord::Checkpoint(SystemSnapshot {
            time: SimTime::from_secs(secs),
            ..Default::default()
        })
    }

    #[test]
    fn records_round_trip_through_pages() {
        let mut b = KvBackend::new();
        b.append(checkpoint_at(2));
        b.append(checkpoint_at(1));
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(0).unwrap().time(), SimTime::from_secs(1));
        assert_eq!(b.get(1).unwrap().time(), SimTime::from_secs(2));
        assert!(b.page_count() >= 2);
    }

    #[test]
    fn storage_is_page_aligned_until_compaction_trims_padding() {
        let mut b = KvBackend::new();
        b.append(checkpoint_at(1));
        assert_eq!(b.storage_bytes() % PAGE_SIZE, 0);
        let stats = b.compact();
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(b.get(0).unwrap().time(), SimTime::from_secs(1));
    }
}
