//! Incremental snapshot deltas.
//!
//! Uploading a full [`SystemSnapshot`] at every capture re-ships everything —
//! full tables, the full provenance graph, and the full identifier
//! dictionary. A [`SnapshotDelta`] instead carries only what changed since
//! the previous capture: per-node tuple additions/removals (removals priced
//! as bare [`TupleId`]s), provenance-graph vertex/edge edits, the topology
//! and traffic counters only when they moved, and a *dictionary diff* — just
//! the symbols minted since the last capture's interner watermark
//! (`InternerSnapshot::diff_since`). Applying a delta to the previous
//! materialized snapshot reproduces the next snapshot bit-for-bit, which the
//! equivalence proptest verifies across every backend.

use crate::snapshot::{tuple_sort_key, NodeSnapshot, SystemSnapshot};
use nt_runtime::{Addr, InternerSnapshot, Tuple, TupleId};
use provenance::{ProvEdge, ProvStoreStats, ProvVertex, VertexId};
use serde::{Deserialize, Serialize};
use simnet::{SimTime, Topology, TrafficStats};
use std::collections::{BTreeMap, BTreeSet};

/// Changes to one node's captured state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeDelta {
    /// Tuples that appeared, per relation (in the relation's canonical
    /// order).
    pub added: BTreeMap<String, Vec<Tuple>>,
    /// Tuples that disappeared, per relation, as content-addressed ids — an
    /// id is 8 bytes on the wire, the tuple itself is not re-shipped.
    pub removed: BTreeMap<String, Vec<TupleId>>,
    /// New provenance-store sizes, when they changed.
    pub provenance: Option<ProvStoreStats>,
}

impl NodeDelta {
    /// True when the node did not change.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.provenance.is_none()
    }

    /// Diff one node's state between two captures.
    pub fn between(prev: &NodeSnapshot, next: &NodeSnapshot) -> Self {
        let mut delta = NodeDelta::default();
        let relations: BTreeSet<&String> =
            prev.relations.keys().chain(next.relations.keys()).collect();
        for rel in relations {
            let empty = Vec::new();
            let before = prev.relations.get(rel).unwrap_or(&empty);
            let after = next.relations.get(rel).unwrap_or(&empty);
            let before_ids: BTreeSet<TupleId> = before.iter().map(Tuple::id).collect();
            let after_ids: BTreeSet<TupleId> = after.iter().map(Tuple::id).collect();
            let added: Vec<Tuple> = after
                .iter()
                .filter(|t| !before_ids.contains(&t.id()))
                .cloned()
                .collect();
            let removed: Vec<TupleId> = before
                .iter()
                .map(Tuple::id)
                .filter(|id| !after_ids.contains(id))
                .collect();
            if !added.is_empty() {
                delta.added.insert(rel.clone(), added);
            }
            if !removed.is_empty() {
                delta.removed.insert(rel.clone(), removed);
            }
        }
        if prev.provenance != next.provenance {
            delta.provenance = Some(next.provenance);
        }
        delta
    }

    /// Upload cost: added tuples at full wire size, removals at one id each,
    /// changed provenance stats as a fixed-width record.
    pub fn upload_bytes(&self) -> usize {
        let added: usize = self
            .added
            .values()
            .flat_map(|ts| ts.iter().map(Tuple::wire_size))
            .sum();
        let removed: usize = self.removed.values().map(|ids| ids.len() * 8).sum();
        // One interned relation id per touched relation, plus the stats
        // record (five counters) when it changed.
        added
            + removed
            + (self.added.len() + self.removed.len()) * 4
            + if self.provenance.is_some() { 40 } else { 0 }
    }
}

/// Changes to the centralized provenance graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Vertices that appeared or changed (applied as overwrites).
    pub vertices_added: Vec<(VertexId, ProvVertex)>,
    /// Vertices that disappeared.
    pub vertices_removed: Vec<VertexId>,
    /// Edges that appeared.
    pub edges_added: Vec<ProvEdge>,
    /// Edges that disappeared.
    pub edges_removed: Vec<ProvEdge>,
}

impl GraphDelta {
    /// True when the graph did not change.
    pub fn is_empty(&self) -> bool {
        self.vertices_added.is_empty()
            && self.vertices_removed.is_empty()
            && self.edges_added.is_empty()
            && self.edges_removed.is_empty()
    }

    /// Diff the graph between two captures.
    pub fn between(prev: &provenance::ProvGraph, next: &provenance::ProvGraph) -> Self {
        let mut delta = GraphDelta::default();
        for (vid, vertex) in &next.vertices {
            if prev.vertices.get(vid) != Some(vertex) {
                delta.vertices_added.push((*vid, vertex.clone()));
            }
        }
        for vid in prev.vertices.keys() {
            if !next.vertices.contains_key(vid) {
                delta.vertices_removed.push(*vid);
            }
        }
        let before: BTreeSet<ProvEdge> = prev.edges.iter().copied().collect();
        let after: BTreeSet<ProvEdge> = next.edges.iter().copied().collect();
        delta.edges_added = after.difference(&before).copied().collect();
        delta.edges_removed = before.difference(&after).copied().collect();
        delta
    }

    /// Upload cost: full vertices for additions, bare ids for removals, two
    /// vertex ids per edge edit.
    pub fn upload_bytes(&self) -> usize {
        self.vertices_added
            .iter()
            .map(|(_, v)| 8 + v.wire_size())
            .sum::<usize>()
            + self.vertices_removed.len() * 8
            + (self.edges_added.len() + self.edges_removed.len()) * 16
    }
}

/// The changes between two consecutive system captures. Applying a delta to
/// the previous capture's materialized snapshot yields the next one,
/// bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDelta {
    /// Capture time of the *next* snapshot (the one this delta materializes).
    pub time: SimTime,
    /// Per-node changes, keyed by node name.
    pub nodes: BTreeMap<Addr, NodeDelta>,
    /// Nodes that disappeared from the capture.
    pub nodes_removed: Vec<Addr>,
    /// The new topology, shipped in full when it changed.
    pub topology: Option<Topology>,
    /// Provenance-graph edits.
    pub graph: GraphDelta,
    /// The new cumulative traffic counters, when they moved.
    pub traffic: Option<TrafficStats>,
    /// The symbols minted since the previous capture's interner watermark —
    /// the *only* dictionary content this delta ships. Empty once the system
    /// stops minting new names.
    pub dict_diff: InternerSnapshot,
}

impl SnapshotDelta {
    /// Diff two consecutive captures. `dict_diff` is the dictionary slice
    /// minted between the two captures' interner watermarks; the capture
    /// path ([`crate::SnapshotCapturer`]) computes it from recorded
    /// watermarks so the cost is independent of what else the process
    /// interned since.
    pub fn between(
        prev: &SystemSnapshot,
        next: &SystemSnapshot,
        dict_diff: InternerSnapshot,
    ) -> Self {
        let mut delta = SnapshotDelta {
            time: next.time,
            dict_diff,
            ..Default::default()
        };
        for (addr, next_node) in &next.nodes {
            match prev.nodes.get(addr) {
                Some(prev_node) => {
                    let nd = NodeDelta::between(prev_node, next_node);
                    if !nd.is_empty() {
                        delta.nodes.insert(*addr, nd);
                    }
                }
                None => {
                    let nd = NodeDelta::between(&NodeSnapshot::default(), next_node);
                    delta.nodes.insert(*addr, nd);
                }
            }
        }
        for addr in prev.nodes.keys() {
            if !next.nodes.contains_key(addr) {
                delta.nodes_removed.push(*addr);
            }
        }
        if prev.topology != next.topology {
            delta.topology = Some(next.topology.clone());
        }
        delta.graph = GraphDelta::between(&prev.graph, &next.graph);
        if prev.traffic != next.traffic {
            delta.traffic = Some(next.traffic.clone());
        }
        delta
    }

    /// Apply the delta in place, turning the previous capture's materialized
    /// snapshot into the next one. Tuple vectors are re-sorted into the
    /// canonical capture order so the result is bit-identical to the full
    /// snapshot; the caller re-stamps the dictionary afterwards
    /// (see [`SystemSnapshot::stamp_dictionary`]).
    pub fn apply(&self, base: &mut SystemSnapshot) {
        base.time = self.time;
        for addr in &self.nodes_removed {
            base.nodes.remove(addr);
        }
        for (addr, nd) in &self.nodes {
            let node = base.nodes.entry(*addr).or_insert_with(|| NodeSnapshot {
                node: *addr,
                ..Default::default()
            });
            for (rel, removed) in &nd.removed {
                let gone: BTreeSet<TupleId> = removed.iter().copied().collect();
                if let Some(tuples) = node.relations.get_mut(rel) {
                    tuples.retain(|t| !gone.contains(&t.id()));
                }
            }
            for (rel, added) in &nd.added {
                node.relations
                    .entry(rel.clone())
                    .or_default()
                    .extend(added.iter().cloned());
            }
            for rel in nd.removed.keys().chain(nd.added.keys()) {
                if let Some(tuples) = node.relations.get_mut(rel) {
                    tuples.sort_by_key(tuple_sort_key);
                }
            }
            node.relations.retain(|_, tuples| !tuples.is_empty());
            if let Some(stats) = nd.provenance {
                node.provenance = stats;
            }
        }
        if let Some(topology) = &self.topology {
            base.topology = topology.clone();
        }
        for vid in &self.graph.vertices_removed {
            base.graph.vertices.remove(vid);
        }
        for (vid, vertex) in &self.graph.vertices_added {
            base.graph.vertices.insert(*vid, vertex.clone());
        }
        if !self.graph.edges_added.is_empty() || !self.graph.edges_removed.is_empty() {
            let gone: BTreeSet<ProvEdge> = self.graph.edges_removed.iter().copied().collect();
            base.graph.edges.retain(|e| !gone.contains(e));
            base.graph
                .edges
                .extend(self.graph.edges_added.iter().copied());
            base.graph.edges.sort();
            base.graph.edges.dedup();
        }
        if !self.graph.is_empty() {
            base.graph.rebuild_adjacency();
        }
        if let Some(traffic) = &self.traffic {
            base.traffic = traffic.clone();
        }
    }

    /// Upload cost of shipping this delta: per-node edits, graph edits, the
    /// topology/traffic payloads only when present, the dictionary diff, and
    /// a small fixed header. An empty delta still costs the header — capture
    /// cadence is not free.
    pub fn upload_bytes(&self) -> usize {
        let nodes: usize = self.nodes.values().map(NodeDelta::upload_bytes).sum();
        8 + nodes
            + self.nodes.len() * 4
            + self.nodes_removed.len() * 4
            + self.topology.as_ref().map(Topology::wire_size).unwrap_or(0)
            + self.graph.upload_bytes()
            + self
                .traffic
                .as_ref()
                .map(TrafficStats::wire_size)
                .unwrap_or(0)
            + self.dict_diff.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::Value;

    fn node_with(name: &str, costs: &[i64]) -> NodeSnapshot {
        let mut node = NodeSnapshot {
            node: name.into(),
            ..Default::default()
        };
        let mut tuples: Vec<Tuple> = costs
            .iter()
            .map(|c| Tuple::new("cost", vec![Value::addr(name), Value::Int(*c)]))
            .collect();
        tuples.sort_by_key(tuple_sort_key);
        node.relations.insert("cost".into(), tuples);
        node
    }

    fn snapshot_with(secs: u64, costs: &[i64]) -> SystemSnapshot {
        let mut snap = SystemSnapshot {
            time: SimTime::from_secs(secs),
            ..Default::default()
        };
        snap.nodes.insert("n1".into(), node_with("n1", costs));
        snap.stamp_dictionary();
        snap
    }

    #[test]
    fn delta_round_trips_to_the_next_snapshot() {
        let a = snapshot_with(1, &[1, 2, 3]);
        let b = snapshot_with(2, &[2, 3, 4, 5]);
        let delta = SnapshotDelta::between(&a, &b, InternerSnapshot::default());
        let mut materialized = a.clone();
        delta.apply(&mut materialized);
        materialized.stamp_dictionary();
        assert_eq!(materialized, b);
    }

    #[test]
    fn removals_are_priced_as_ids_not_tuples() {
        let a = snapshot_with(1, &[1, 2, 3]);
        let b = snapshot_with(2, &[1]);
        let delta = SnapshotDelta::between(&a, &b, InternerSnapshot::default());
        let full = b.upload_bytes();
        assert!(
            delta.upload_bytes() < full,
            "a shrinking capture must cost less than re-shipping it: {} vs {}",
            delta.upload_bytes(),
            full
        );
    }

    #[test]
    fn unchanged_capture_produces_a_near_empty_delta() {
        let a = snapshot_with(1, &[1, 2]);
        let b = snapshot_with(2, &[1, 2]);
        let delta = SnapshotDelta::between(&a, &b, InternerSnapshot::default());
        assert!(delta.nodes.is_empty());
        assert!(delta.topology.is_none());
        assert!(delta.graph.is_empty());
        assert!(delta.traffic.is_none());
        assert_eq!(delta.upload_bytes(), 8, "only the header remains");
    }

    #[test]
    fn node_appearance_and_disappearance_round_trip() {
        let mut a = snapshot_with(1, &[1]);
        let mut b = snapshot_with(2, &[1]);
        b.nodes.insert("n2".into(), node_with("n2", &[7]));
        b.stamp_dictionary();
        let delta = SnapshotDelta::between(&a, &b, InternerSnapshot::default());
        let mut forward = a.clone();
        delta.apply(&mut forward);
        forward.stamp_dictionary();
        assert_eq!(forward, b);

        // And the reverse direction drops the node again.
        std::mem::swap(&mut a, &mut b);
        let delta = SnapshotDelta::between(&a, &b, InternerSnapshot::default());
        assert_eq!(delta.nodes_removed, vec![Addr::new("n2")]);
        let mut back = a.clone();
        delta.apply(&mut back);
        back.stamp_dictionary();
        assert_eq!(back, b);
    }
}
