//! Durable log storage: append-only segment files.
//!
//! Records are framed into numbered segment files (`seg-00000.ntl`):
//!
//! ```text
//! frame   := [u32 payload_len][u8 kind][u64 time_us][u64 fnv64(payload)][payload]
//! footer  := [u32 0xFFFF_FFFF][u32 count][count × (u64 offset, u64 time_us, u8 kind)][u64 magic]
//! ```
//!
//! A segment is *sealed* once it reaches its record capacity: the footer
//! index is appended and the file is fsynced, making the segment immutable.
//! Opening a directory recovers every record by scanning frames (the header
//! carries time and kind, so recovery never decodes JSON payloads): a
//! truncated tail — an incomplete header, an incomplete payload, or a
//! checksum mismatch, i.e. a crash mid-append — silently ends that segment's
//! scan, keeping the intact prefix. Compaction rewrites all live records
//! into fresh sealed segments, reclaiming dead tail bytes.

use crate::backend::{CompactionStats, LogBackend, LogRecord, RecordKind};
use simnet::SimTime;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const FOOTER_SENTINEL: u32 = 0xFFFF_FFFF;
const FOOTER_MAGIC: u64 = 0x4e54_4c4f_4753_4547; // "NTLOGSEG"
const FRAME_HEADER: usize = 4 + 1 + 8 + 8;

/// How many records a segment holds before it is sealed.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 8;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn kind_byte(kind: RecordKind) -> u8 {
    match kind {
        RecordKind::Checkpoint => 0,
        RecordKind::Delta => 1,
    }
}

fn byte_kind(b: u8) -> Option<RecordKind> {
    match b {
        0 => Some(RecordKind::Checkpoint),
        1 => Some(RecordKind::Delta),
        _ => None,
    }
}

/// Where one record lives on disk.
#[derive(Debug, Clone, Copy)]
struct Slot {
    segment: u32,
    offset: u64,
    payload_len: u32,
    time: SimTime,
    kind: RecordKind,
}

#[derive(Debug)]
struct ActiveSegment {
    file: File,
    number: u32,
    records: Vec<(u64, SimTime, RecordKind)>,
    bytes: u64,
}

/// The append-only segment-file backend.
#[derive(Debug)]
pub struct SegmentFileBackend {
    dir: PathBuf,
    slots: Vec<Slot>,
    times: Vec<SimTime>,
    kinds: Vec<RecordKind>,
    active: Option<ActiveSegment>,
    next_segment: u32,
    segment_capacity: usize,
    storage_bytes: u64,
}

impl SegmentFileBackend {
    /// Open (or create) a segment directory, recovering every intact record
    /// already on disk. Records are indexed in capture-time order with file
    /// order breaking ties; new appends go to a fresh segment, never into a
    /// possibly-torn existing one.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut segment_files: Vec<(u32, PathBuf)> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_name()?.to_str()?.to_string();
                let number: u32 = name
                    .strip_prefix("seg-")?
                    .strip_suffix(".ntl")?
                    .parse()
                    .ok()?;
                Some((number, path))
            })
            .collect();
        segment_files.sort();

        let mut backend = SegmentFileBackend {
            dir,
            slots: Vec::new(),
            times: Vec::new(),
            kinds: Vec::new(),
            active: None,
            next_segment: segment_files.last().map(|(n, _)| n + 1).unwrap_or(0),
            segment_capacity: DEFAULT_SEGMENT_CAPACITY,
            storage_bytes: 0,
        };
        let mut recovered: Vec<Slot> = Vec::new();
        for (number, path) in &segment_files {
            let bytes = fs::read(path)?;
            backend.storage_bytes += bytes.len() as u64;
            recovered.extend(scan_segment(*number, &bytes));
        }
        // Logical order: capture time, file order as the stable tiebreak
        // (recovered is already in file order, and sort_by_key is stable).
        recovered.sort_by_key(|s| s.time);
        for slot in recovered {
            backend.times.push(slot.time);
            backend.kinds.push(slot.kind);
            backend.slots.push(slot);
        }
        Ok(backend)
    }

    /// Override how many records a segment holds before sealing.
    pub fn with_segment_capacity(mut self, capacity: usize) -> Self {
        self.segment_capacity = capacity.max(1);
        self
    }

    fn segment_path(&self, number: u32) -> PathBuf {
        self.dir.join(format!("seg-{number:05}.ntl"))
    }

    fn ensure_active(&mut self) -> std::io::Result<()> {
        if self.active.is_none() {
            let number = self.next_segment;
            self.next_segment += 1;
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.segment_path(number))?;
            self.active = Some(ActiveSegment {
                file,
                number,
                records: Vec::new(),
                bytes: 0,
            });
        }
        Ok(())
    }

    fn seal_active(&mut self) -> std::io::Result<()> {
        let Some(mut active) = self.active.take() else {
            return Ok(());
        };
        let mut footer = Vec::new();
        footer.extend_from_slice(&FOOTER_SENTINEL.to_le_bytes());
        footer.extend_from_slice(&(active.records.len() as u32).to_le_bytes());
        for (offset, time, kind) in &active.records {
            footer.extend_from_slice(&offset.to_le_bytes());
            footer.extend_from_slice(&time.as_micros().to_le_bytes());
            footer.push(kind_byte(*kind));
        }
        footer.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
        active.file.write_all(&footer)?;
        active.file.sync_all()?;
        self.storage_bytes += footer.len() as u64;
        Ok(())
    }

    fn append_record(&mut self, record: &LogRecord) -> std::io::Result<Slot> {
        self.ensure_active()?;
        let payload = serde_json::to_string(record)
            .map_err(|e| std::io::Error::other(e.to_string()))?
            .into_bytes();
        let time = record.time();
        let kind = record.kind();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.push(kind_byte(kind));
        frame.extend_from_slice(&time.as_micros().to_le_bytes());
        frame.extend_from_slice(&fnv64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let active = self.active.as_mut().expect("active segment");
        let offset = active.bytes;
        active.file.write_all(&frame)?;
        active.bytes += frame.len() as u64;
        active.records.push((offset, time, kind));
        self.storage_bytes += frame.len() as u64;
        let slot = Slot {
            segment: active.number,
            offset,
            payload_len: payload.len() as u32,
            time,
            kind,
        };
        if active.records.len() >= self.segment_capacity {
            self.seal_active()?;
        }
        Ok(slot)
    }

    fn read_slot(&self, slot: &Slot) -> std::io::Result<LogRecord> {
        let mut file = File::open(self.segment_path(slot.segment))?;
        file.seek(SeekFrom::Start(slot.offset + FRAME_HEADER as u64))?;
        let mut payload = vec![0u8; slot.payload_len as usize];
        file.read_exact(&mut payload)?;
        let text = String::from_utf8(payload).map_err(|e| std::io::Error::other(e.to_string()))?;
        serde_json::from_str(&text).map_err(|e| std::io::Error::other(e.to_string()))
    }
}

/// Scan one segment's bytes, returning the slots of every intact record. A
/// truncated or corrupt tail ends the scan; the footer sentinel ends it
/// cleanly.
fn scan_segment(number: u32, bytes: &[u8]) -> Vec<Slot> {
    let mut slots = Vec::new();
    let mut offset = 0usize;
    while offset + FRAME_HEADER <= bytes.len() {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        if len == FOOTER_SENTINEL {
            break; // sealed segment's footer index
        }
        let Some(kind) = byte_kind(bytes[offset + 4]) else {
            break;
        };
        let time_us = u64::from_le_bytes(bytes[offset + 5..offset + 13].try_into().unwrap());
        let checksum = u64::from_le_bytes(bytes[offset + 13..offset + 21].try_into().unwrap());
        let payload_start = offset + FRAME_HEADER;
        let payload_end = payload_start + len as usize;
        if payload_end > bytes.len() {
            break; // truncated tail: incomplete payload
        }
        if fnv64(&bytes[payload_start..payload_end]) != checksum {
            break; // torn write
        }
        slots.push(Slot {
            segment: number,
            offset: offset as u64,
            payload_len: len,
            time: SimTime::from_micros(time_us),
            kind,
        });
        offset = payload_end;
    }
    slots
}

impl LogBackend for SegmentFileBackend {
    fn name(&self) -> &'static str {
        "segment_file"
    }

    fn append(&mut self, record: LogRecord) {
        let slot = self
            .append_record(&record)
            .expect("segment append must not fail");
        let pos = self.times.partition_point(|t| *t <= slot.time);
        self.times.insert(pos, slot.time);
        self.kinds.insert(pos, slot.kind);
        self.slots.insert(pos, slot);
    }

    fn get(&self, index: usize) -> Option<LogRecord> {
        let slot = self.slots.get(index)?;
        self.read_slot(slot).ok()
    }

    fn time_index(&self) -> &[SimTime] {
        &self.times
    }

    fn kind_index(&self) -> &[RecordKind] {
        &self.kinds
    }

    fn flush(&mut self) {
        if let Some(active) = &mut self.active {
            let _ = active.file.sync_all();
        }
    }

    fn compact(&mut self) -> CompactionStats {
        let bytes_before = self.storage_bytes as usize;
        let records: Vec<LogRecord> = self.iter().collect();
        let old_segments: Vec<u32> = (0..self.next_segment).collect();
        self.active = None;
        self.slots.clear();
        self.times.clear();
        self.kinds.clear();
        self.storage_bytes = 0;
        for record in records {
            LogBackend::append(self, record);
        }
        // The tail segment stays unsealed, exactly as after normal appends —
        // sealing it here would *add* a footer and grow the footprint.
        if let Some(active) = &mut self.active {
            let _ = active.file.sync_all();
        }
        let live: std::collections::BTreeSet<u32> = self.slots.iter().map(|s| s.segment).collect();
        for number in old_segments {
            if !live.contains(&number) {
                let _ = fs::remove_file(self.segment_path(number));
            }
        }
        CompactionStats {
            bytes_before,
            bytes_after: self.storage_bytes as usize,
            records: self.slots.len(),
        }
    }

    fn storage_bytes(&self) -> usize {
        self.storage_bytes as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SystemSnapshot;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ntl-segtest-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn checkpoint_at(secs: u64) -> LogRecord {
        LogRecord::Checkpoint(SystemSnapshot {
            time: SimTime::from_secs(secs),
            ..Default::default()
        })
    }

    #[test]
    fn records_survive_drop_and_reopen() {
        let dir = tempdir("reopen");
        {
            let mut b = SegmentFileBackend::open(&dir).unwrap();
            for s in [1, 2, 3] {
                b.append(checkpoint_at(s));
            }
            b.flush();
        }
        let b = SegmentFileBackend::open(&dir).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(2).unwrap().time(), SimTime::from_secs(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_on_recovery() {
        let dir = tempdir("truncate");
        {
            let mut b = SegmentFileBackend::open(&dir)
                .unwrap()
                .with_segment_capacity(100);
            for s in [1, 2, 3] {
                b.append(checkpoint_at(s));
            }
            b.flush();
        }
        // Chop bytes off the tail of the only segment, simulating a crash
        // mid-append.
        let seg = dir.join("seg-00000.ntl");
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 10]).unwrap();
        let b = SegmentFileBackend::open(&dir).unwrap();
        assert_eq!(b.len(), 2, "intact prefix survives, torn record dropped");
        assert_eq!(b.get(1).unwrap().time(), SimTime::from_secs(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reclaims_dead_tail_bytes() {
        let dir = tempdir("compact");
        {
            let mut b = SegmentFileBackend::open(&dir)
                .unwrap()
                .with_segment_capacity(100);
            for s in [1, 2, 3, 4] {
                b.append(checkpoint_at(s));
            }
            b.flush();
        }
        let seg = dir.join("seg-00000.ntl");
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
        let mut b = SegmentFileBackend::open(&dir).unwrap();
        assert_eq!(b.len(), 3);
        let stats = b.compact();
        assert!(stats.bytes_after <= stats.bytes_before);
        assert_eq!(stats.records, 3);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0).unwrap().time(), SimTime::from_secs(1));
        fs::remove_dir_all(&dir).unwrap();
    }
}
