//! # vis — the visualizer backend of NetTrails
//!
//! NetTrails replays execution logs through two visual tools: the RapidNet
//! visualizer (network topology, node positions, link state) and a provenance
//! visualizer based on **hypertrees** — the provenance graph is laid out on a
//! hyperbolic plane so users can focus on small segments and navigate with
//! smooth transitions (Figure 2 of the paper).
//!
//! A GUI is presentation-only, so this reproduction implements everything the
//! GUI would consume and that can be tested:
//!
//! * [`dot`] — Graphviz DOT export of provenance graphs and topologies,
//! * [`hypertree`] — the radial/hyperbolic layout: every vertex of a proof
//!   tree (or of the full provenance graph) is assigned coordinates inside the
//!   Poincaré unit disk, plus the *focus change* transformation (a Möbius
//!   translation) used for the smooth refocusing the paper describes,
//! * [`ascii`] — plain-text rendering of proof trees and topology summaries
//!   for terminal exploration (used by the examples),
//! * [`timeline`] — plain-text rendering of the Log Store's checkpoint/delta
//!   record stream (times, kinds, upload costs), read purely through the
//!   pluggable-backend trait surface.

pub mod ascii;
pub mod dot;
pub mod hypertree;
pub mod timeline;

pub use ascii::{render_proof_tree, render_topology_summary};
pub use dot::{provenance_to_dot, topology_to_dot};
pub use hypertree::{focus_on, HyperPoint, HypertreeLayout};
pub use timeline::render_replay_timeline;
