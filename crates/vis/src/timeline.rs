//! ASCII rendering of a log store's record timeline.
//!
//! The replay slider of the visualizer is backed by the central Log Store's
//! checkpoint/delta record stream. This renders that stream for terminal
//! exploration: one line per record showing its capture time, whether it is
//! a full checkpoint (`C`) or an incremental delta (`Δ`), its upload cost
//! and a bar proportional to it — making the incremental savings visible at
//! a glance. The renderer reads the store purely through the
//! [`logstore::LogBackend`] trait surface ([`logstore::LogStore::record`]),
//! so it works identically over the in-memory, segment-file and KV backends.

use logstore::{LogRecord, LogStore};

/// Render one line per stored record: time, kind, upload bytes, cost bar.
pub fn render_replay_timeline(store: &LogStore) -> String {
    let records = store.records();
    let mut out = format!(
        "log store [{}]: {} records ({} checkpoints, {} deltas), {} bytes uploaded\n",
        store.backend_name(),
        records.len(),
        store.checkpoint_count(),
        store.delta_count(),
        store.uploaded_bytes(),
    );
    let max_bytes = records
        .iter()
        .map(LogRecord::upload_bytes)
        .max()
        .unwrap_or(0)
        .max(1);
    for record in &records {
        let bytes = record.upload_bytes();
        let bar = "#".repeat((bytes * 40).div_ceil(max_bytes).min(40));
        let (tag, label) = match record {
            LogRecord::Checkpoint(s) => ("C", format!("{} nodes", s.nodes.len())),
            LogRecord::Delta(d) => (
                "Δ",
                format!(
                    "{} node edits, {} dict entries",
                    d.nodes.len(),
                    d.dict_diff.len()
                ),
            ),
        };
        out.push_str(&format!(
            "{:>10.3}s {tag} {bytes:>8} B {bar:<40} {label}\n",
            record.time().as_secs_f64()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore::{SnapshotCapturer, SystemSnapshot};
    use simnet::SimTime;

    fn snapshot_at(secs: u64) -> SystemSnapshot {
        SystemSnapshot {
            time: SimTime::from_secs(secs),
            ..Default::default()
        }
    }

    #[test]
    fn timeline_shows_checkpoints_and_deltas() {
        let mut store = LogStore::new();
        let mut capturer = SnapshotCapturer::new(2);
        for secs in 1..=4 {
            store.append_record(capturer.capture(snapshot_at(secs)));
        }
        let rendered = render_replay_timeline(&store);
        assert!(rendered.contains("4 records (2 checkpoints, 2 deltas)"));
        assert!(rendered.contains(" C "));
        assert!(rendered.contains(" Δ "));
        assert!(
            rendered.lines().count() == 5,
            "header + one line per record"
        );
    }

    #[test]
    fn empty_store_renders_a_header_only() {
        let store = LogStore::new();
        let rendered = render_replay_timeline(&store);
        assert!(rendered.contains("0 records"));
        assert_eq!(rendered.lines().count(), 1);
    }
}
