//! Graphviz DOT export.

use provenance::graph::{ProvGraph, ProvVertex, VertexId};
use simnet::Topology;
use std::fmt::Write as _;

/// Render a provenance graph as Graphviz DOT. Tuple vertices are ellipses
/// (base tuples shaded), rule-execution vertices are boxes; every vertex is
/// annotated with the node it is stored at, mirroring the per-node
/// partitioning of the distributed graph.
pub fn provenance_to_dot(graph: &ProvGraph) -> String {
    let mut out = String::from("digraph provenance {\n  rankdir=BT;\n");
    for (id, vertex) in &graph.vertices {
        let name = vertex_name(id);
        match vertex {
            ProvVertex::Tuple {
                tuple,
                home,
                is_base,
                vid,
            } => {
                let label = tuple
                    .as_ref()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| vid.to_string());
                let fill = if *is_base {
                    ", style=filled, fillcolor=lightgrey"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "  {name} [shape=ellipse{fill}, label=\"{}\\n@{home}\"];",
                    escape(&label)
                );
            }
            ProvVertex::RuleExec { rule, node, .. } => {
                let _ = writeln!(
                    out,
                    "  {name} [shape=box, label=\"{}\\n@{node}\"];",
                    escape(rule)
                );
            }
        }
    }
    for edge in &graph.edges {
        let _ = writeln!(
            out,
            "  {} -> {};",
            vertex_name(&edge.from),
            vertex_name(&edge.to)
        );
    }
    out.push_str("}\n");
    out
}

/// Render a topology as Graphviz DOT (undirected view: each bidirectional pair
/// is drawn once, labelled with its cost).
pub fn topology_to_dot(topology: &Topology) -> String {
    let mut out = String::from("graph topology {\n  layout=neato;\n");
    for node in topology.nodes() {
        let _ = writeln!(out, "  \"{node}\";");
    }
    let mut drawn: Vec<(String, String)> = Vec::new();
    for link in topology.links() {
        let key = if link.from <= link.to {
            (link.from.clone(), link.to.clone())
        } else {
            (link.to.clone(), link.from.clone())
        };
        if drawn.contains(&key) {
            continue;
        }
        drawn.push(key);
        let _ = writeln!(
            out,
            "  \"{}\" -- \"{}\" [label=\"{}\"];",
            link.from, link.to, link.cost
        );
    }
    out.push_str("}\n");
    out
}

fn vertex_name(id: &VertexId) -> String {
    match id {
        VertexId::Tuple(vid) => format!("t{:016x}", vid.0),
        VertexId::RuleExec(rid) => format!("r{:016x}", rid.0),
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{Firing, Tuple, Value, BASE_RULE};
    use provenance::ProvenanceSystem;

    fn sample_graph() -> ProvGraph {
        let mut sys = ProvenanceSystem::new(["n1"]);
        let link = Tuple::new("link", vec![Value::addr("n1"), Value::Int(1)]);
        let cost = Tuple::new("cost", vec![Value::addr("n1"), Value::Int(1)]);
        sys.apply_firing(&Firing {
            rule: BASE_RULE.into(),
            node: "n1".into(),
            head: link.clone(),
            head_home: "n1".into(),
            inputs: vec![],
            input_tuples: vec![],
            insert: true,
        });
        sys.apply_firing(&Firing {
            rule: "r1".into(),
            node: "n1".into(),
            head: cost,
            head_home: "n1".into(),
            inputs: vec![link.id()],
            input_tuples: vec![link],
            insert: true,
        });
        ProvGraph::from_system(&sys)
    }

    #[test]
    fn provenance_dot_contains_vertices_and_edges() {
        let dot = provenance_to_dot(&sample_graph());
        assert!(dot.starts_with("digraph provenance {"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("->"));
        assert!(dot.contains("lightgrey"), "base tuples are shaded");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn topology_dot_draws_each_pair_once() {
        let topo = Topology::ring(4);
        let dot = topology_to_dot(&topo);
        assert_eq!(
            dot.matches(" -- ").count(),
            4,
            "4 undirected edges in a 4-ring"
        );
        assert!(dot.contains("\"n1\""));
    }
}
