//! Plain-text rendering of proof trees and topologies.
//!
//! The examples and the demonstration driver print these to the terminal —
//! the textual counterpart of navigating the provenance visualizer.

use provenance::query::ProofTree;
use simnet::Topology;
use std::fmt::Write as _;

/// Render a proof tree as an indented ASCII tree, e.g.
///
/// ```text
/// minCost(n1,n3,2) @n1
/// └─ mc3 @n1
///    └─ cost(n1,n3,2) @n1
///       └─ mc2 @n2
///          ├─ mc2_aux(n2,n1,1) @n2
///          └─ minCost(n2,n3,1) @n2
/// ```
pub fn render_proof_tree(tree: &ProofTree) -> String {
    let mut out = String::new();
    render_tuple(tree, "", true, true, &mut out);
    out
}

fn render_tuple(tree: &ProofTree, prefix: &str, is_last: bool, is_root: bool, out: &mut String) {
    let label = tree
        .tuple
        .as_ref()
        .map(|t| t.to_string())
        .unwrap_or_else(|| tree.vid.to_string());
    let marker = if tree.is_base { " [base]" } else { "" };
    let pruned = if tree.pruned { " [pruned]" } else { "" };
    if is_root {
        let _ = writeln!(out, "{label} @{}{marker}{pruned}", tree.home);
    } else {
        let branch = if is_last { "└─ " } else { "├─ " };
        let _ = writeln!(
            out,
            "{prefix}{branch}{label} @{}{marker}{pruned}",
            tree.home
        );
    }
    let child_prefix = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "   " } else { "│  " })
    };
    for (i, d) in tree.derivations.iter().enumerate() {
        let last = i + 1 == tree.derivations.len();
        let branch = if last { "└─ " } else { "├─ " };
        let _ = writeln!(out, "{child_prefix}{branch}{} @{}", d.rule, d.node);
        let next_prefix = format!("{child_prefix}{}", if last { "   " } else { "│  " });
        for (j, input) in d.inputs.iter().enumerate() {
            let input_last = j + 1 == d.inputs.len();
            render_tuple(input, &next_prefix, input_last, false, out);
        }
    }
}

/// One-paragraph summary of a topology (node count, link count, degree range).
pub fn render_topology_summary(topology: &Topology) -> String {
    let nodes: Vec<&str> = topology.nodes().collect();
    let degrees: Vec<usize> = nodes.iter().map(|n| topology.neighbors(n).len()).collect();
    let min_deg = degrees.iter().min().copied().unwrap_or(0);
    let max_deg = degrees.iter().max().copied().unwrap_or(0);
    format!(
        "topology: {} nodes, {} directed links, out-degree {}..{}",
        topology.node_count(),
        topology.link_count(),
        min_deg,
        max_deg
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{Tuple, TupleId, Value};
    use provenance::query::RuleExecNode;
    use provenance::store::RuleExecId;

    fn tree() -> ProofTree {
        let link = Tuple::new(
            "link",
            vec![Value::addr("n1"), Value::addr("n2"), Value::Int(1)],
        );
        ProofTree {
            vid: TupleId(1),
            tuple: Some(Tuple::new(
                "minCost",
                vec![Value::addr("n1"), Value::addr("n2"), Value::Int(1)],
            )),
            home: "n1".into(),
            is_base: false,
            derivations: vec![RuleExecNode {
                rid: RuleExecId::compute_str("mc3", "n1", &[link.id()]),
                rule: "mc3".into(),
                node: "n1".into(),
                inputs: vec![ProofTree {
                    vid: link.id(),
                    tuple: Some(link),
                    home: "n1".into(),
                    is_base: true,
                    derivations: vec![],
                    pruned: false,
                }],
            }],
            pruned: false,
        }
    }

    #[test]
    fn proof_tree_rendering_shows_structure() {
        let text = render_proof_tree(&tree());
        assert!(text.starts_with("minCost(n1,n2,1) @n1"));
        assert!(text.contains("└─ mc3 @n1"));
        assert!(text.contains("link(n1,n2,1) @n1 [base]"));
        // Indentation grows with depth.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].starts_with("   "));
    }

    #[test]
    fn topology_summary_mentions_counts() {
        let summary = render_topology_summary(&Topology::star(5));
        assert!(summary.contains("5 nodes"));
        assert!(summary.contains("8 directed links"));
        assert!(summary.contains("1..4"));
    }
}
