//! Hypertree (hyperbolic) layout of provenance trees.
//!
//! The NetTrails provenance visualizer "is based on hypertrees: the provenance
//! graph is presented on a hyperbolic plane, enabling users to focus on small
//! segments of the graph; additionally, users can navigate the provenance
//! graph by changing focus with smooth transitions" (Section 2.3).
//!
//! This module computes that layout:
//!
//! * [`HypertreeLayout::of_proof_tree`] assigns every vertex of a
//!   [`ProofTree`] a position in the Poincaré unit disk using the classic
//!   hyperbolic-tree construction — each child is placed at a fixed hyperbolic
//!   distance from its parent within the parent's angular wedge, so the root
//!   sits at the centre and deep subtrees shrink toward the rim (exactly the
//!   fisheye effect visible in Figure 2).
//! * [`focus_on`] applies the Möbius translation that moves a chosen vertex to
//!   the centre of the disk — the "change focus with smooth transitions"
//!   interaction (the transition is obtained by interpolating the translation
//!   parameter).

use provenance::query::{ProofTree, RuleExecNode};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A point inside the Poincaré unit disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperPoint {
    /// X coordinate, |(x,y)| < 1.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl HyperPoint {
    /// The disk centre.
    pub const ORIGIN: HyperPoint = HyperPoint { x: 0.0, y: 0.0 };

    /// Euclidean norm (distance from the centre).
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Hyperbolic distance to another point of the disk.
    pub fn hyperbolic_distance(&self, other: &HyperPoint) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let num = dx * dx + dy * dy;
        let den = (1.0 - self.norm().powi(2)) * (1.0 - other.norm().powi(2));
        if den <= 0.0 {
            return f64::INFINITY;
        }
        (1.0 + 2.0 * num / den).acosh()
    }
}

/// Identifier of a laid-out vertex: the path of child indices from the root
/// (empty = the root tuple vertex). Even path lengths are tuple vertices, odd
/// path lengths are rule-execution vertices.
pub type LayoutKey = Vec<usize>;

/// One laid-out vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutVertex {
    /// Position in the unit disk.
    pub position: HyperPoint,
    /// Display label.
    pub label: String,
    /// True for tuple vertices, false for rule executions.
    pub is_tuple: bool,
    /// Depth from the root (root = 0).
    pub depth: usize,
}

/// A hypertree layout: positions for every vertex of a proof tree plus the
/// parent/child edges.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HypertreeLayout {
    /// Vertices keyed by their path from the root.
    pub vertices: BTreeMap<LayoutKey, LayoutVertex>,
    /// Edges as (parent key, child key) pairs.
    pub edges: Vec<(LayoutKey, LayoutKey)>,
}

/// Fraction of the (Euclidean-mapped) radius step between tree levels.
const LEVEL_RADIUS: f64 = 0.45;

impl HypertreeLayout {
    /// Lay out a proof tree with its root at the disk centre.
    pub fn of_proof_tree(tree: &ProofTree) -> Self {
        let mut layout = HypertreeLayout::default();
        layout_tuple(
            tree,
            &mut layout,
            Vec::new(),
            HyperPoint::ORIGIN,
            0.0,
            std::f64::consts::TAU,
            0,
        );
        layout
    }

    /// Number of laid-out vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The maximum Euclidean norm over all vertices (must stay below 1).
    pub fn max_norm(&self) -> f64 {
        self.vertices
            .values()
            .map(|v| v.position.norm())
            .fold(0.0, f64::max)
    }
}

#[allow(clippy::too_many_arguments)]
fn layout_tuple(
    tree: &ProofTree,
    layout: &mut HypertreeLayout,
    key: LayoutKey,
    position: HyperPoint,
    wedge_start: f64,
    wedge_end: f64,
    depth: usize,
) {
    let label = tree
        .tuple
        .as_ref()
        .map(|t| t.to_string())
        .unwrap_or_else(|| tree.vid.to_string());
    layout.vertices.insert(
        key.clone(),
        LayoutVertex {
            position,
            label,
            is_tuple: true,
            depth,
        },
    );
    let n = tree.derivations.len();
    if n == 0 {
        return;
    }
    let span = (wedge_end - wedge_start) / n as f64;
    for (i, derivation) in tree.derivations.iter().enumerate() {
        let child_start = wedge_start + span * i as f64;
        let child_end = child_start + span;
        let angle = (child_start + child_end) / 2.0;
        let child_pos = place_child(position, angle, depth + 1);
        let mut child_key = key.clone();
        child_key.push(i);
        layout.edges.push((key.clone(), child_key.clone()));
        layout_rule_exec(
            derivation,
            layout,
            child_key,
            child_pos,
            child_start,
            child_end,
            depth + 1,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn layout_rule_exec(
    exec: &RuleExecNode,
    layout: &mut HypertreeLayout,
    key: LayoutKey,
    position: HyperPoint,
    wedge_start: f64,
    wedge_end: f64,
    depth: usize,
) {
    layout.vertices.insert(
        key.clone(),
        LayoutVertex {
            position,
            label: format!("{}@{}", exec.rule, exec.node),
            is_tuple: false,
            depth,
        },
    );
    let n = exec.inputs.len();
    if n == 0 {
        return;
    }
    let span = (wedge_end - wedge_start) / n as f64;
    for (i, input) in exec.inputs.iter().enumerate() {
        let child_start = wedge_start + span * i as f64;
        let child_end = child_start + span;
        let angle = (child_start + child_end) / 2.0;
        let child_pos = place_child(position, angle, depth + 1);
        let mut child_key = key.clone();
        child_key.push(i);
        layout.edges.push((key.clone(), child_key.clone()));
        layout_tuple(
            input,
            layout,
            child_key,
            child_pos,
            child_start,
            child_end,
            depth + 1,
        );
    }
}

/// Place a child at `angle` from its parent. Successive levels step a constant
/// *hyperbolic* distance outward, which in the Euclidean disk metric means
/// the step shrinks geometrically — the fisheye effect.
fn place_child(parent: HyperPoint, angle: f64, depth: usize) -> HyperPoint {
    let remaining = 1.0 - parent.norm();
    let step = remaining * LEVEL_RADIUS * (1.0 / (1.0 + 0.15 * depth as f64));
    let p = HyperPoint {
        x: parent.x + step * angle.cos(),
        y: parent.y + step * angle.sin(),
    };
    clamp_to_disk(p)
}

fn clamp_to_disk(p: HyperPoint) -> HyperPoint {
    let n = p.norm();
    if n >= 0.999 {
        let scale = 0.998 / n;
        HyperPoint {
            x: p.x * scale,
            y: p.y * scale,
        }
    } else {
        p
    }
}

/// Möbius translation that moves `focus` to the centre of the disk; applied to
/// every vertex of a layout it produces the refocused view the paper's
/// interactive exploration uses. (Interpolating `focus` from the origin to the
/// target position yields the smooth transition.)
pub fn focus_on(layout: &HypertreeLayout, focus: HyperPoint) -> HypertreeLayout {
    let mut out = layout.clone();
    for v in out.vertices.values_mut() {
        v.position = mobius_translate(v.position, focus);
    }
    out
}

/// The Möbius transformation z -> (z - a) / (1 - conj(a) z) over the unit disk
/// (complex arithmetic written out over (x, y)).
fn mobius_translate(z: HyperPoint, a: HyperPoint) -> HyperPoint {
    // numerator: z - a
    let num = (z.x - a.x, z.y - a.y);
    // denominator: 1 - conj(a) * z = 1 - (a.x - i a.y)(z.x + i z.y)
    let den = (1.0 - (a.x * z.x + a.y * z.y), -(a.x * z.y - a.y * z.x));
    let den_norm2 = den.0 * den.0 + den.1 * den.1;
    if den_norm2 < 1e-12 {
        return HyperPoint::ORIGIN;
    }
    // num / den (complex division).
    clamp_to_disk(HyperPoint {
        x: (num.0 * den.0 + num.1 * den.1) / den_norm2,
        y: (num.1 * den.0 - num.0 * den.1) / den_norm2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_runtime::{Tuple, TupleId, Value};
    use provenance::store::RuleExecId;

    fn leaf(name: &str, base: bool) -> ProofTree {
        ProofTree {
            vid: Tuple::new(name, vec![Value::addr("n1")]).id(),
            tuple: Some(Tuple::new(name, vec![Value::addr("n1")])),
            home: "n1".into(),
            is_base: base,
            derivations: vec![],
            pruned: false,
        }
    }

    fn sample_tree() -> ProofTree {
        ProofTree {
            vid: TupleId(1),
            tuple: Some(Tuple::new(
                "minCost",
                vec![Value::addr("n1"), Value::Int(2)],
            )),
            home: "n1".into(),
            is_base: false,
            derivations: vec![
                RuleExecNode {
                    rid: RuleExecId::compute_str("r3", "n1", &[TupleId(2)]),
                    rule: "r3".into(),
                    node: "n1".into(),
                    inputs: vec![leaf("cost_a", true), leaf("cost_b", true)],
                },
                RuleExecNode {
                    rid: RuleExecId::compute_str("r2", "n2", &[TupleId(3)]),
                    rule: "r2".into(),
                    node: "n2".into(),
                    inputs: vec![leaf("link", true)],
                },
            ],
            pruned: false,
        }
    }

    #[test]
    fn layout_covers_every_vertex_and_stays_in_the_disk() {
        let layout = HypertreeLayout::of_proof_tree(&sample_tree());
        // 1 root + 2 rule execs + 3 leaves.
        assert_eq!(layout.len(), 6);
        assert_eq!(layout.edges.len(), 5);
        assert!(layout.max_norm() < 1.0);
        // Root is at the centre.
        assert_eq!(layout.vertices[&vec![]].position, HyperPoint::ORIGIN);
        // Deeper vertices are farther from the centre.
        let d1 = layout.vertices[&vec![0]].position.norm();
        let d2 = layout.vertices[&vec![0, 1]].position.norm();
        assert!(d2 > d1);
    }

    #[test]
    fn labels_distinguish_tuples_and_rule_executions() {
        let layout = HypertreeLayout::of_proof_tree(&sample_tree());
        assert!(layout.vertices[&vec![]].is_tuple);
        assert!(!layout.vertices[&vec![0]].is_tuple);
        assert!(layout.vertices[&vec![0]].label.contains("r3@n1"));
    }

    #[test]
    fn focus_moves_the_chosen_vertex_to_the_centre() {
        let layout = HypertreeLayout::of_proof_tree(&sample_tree());
        let target_key = vec![0, 1];
        let target = layout.vertices[&target_key].position;
        let refocused = focus_on(&layout, target);
        assert!(refocused.vertices[&target_key].position.norm() < 1e-9);
        // Every point stays inside the disk.
        assert!(refocused.max_norm() < 1.0);
        // The transformation is (approximately) a hyperbolic isometry: the
        // hyperbolic distance between two vertices is preserved.
        let a_before = layout.vertices[&vec![]].position;
        let b_before = layout.vertices[&vec![1]].position;
        let a_after = refocused.vertices[&vec![]].position;
        let b_after = refocused.vertices[&vec![1]].position;
        let d_before = a_before.hyperbolic_distance(&b_before);
        let d_after = a_after.hyperbolic_distance(&b_after);
        assert!((d_before - d_after).abs() < 1e-6);
    }

    #[test]
    fn hyperbolic_distance_basics() {
        let origin = HyperPoint::ORIGIN;
        let p = HyperPoint { x: 0.5, y: 0.0 };
        assert_eq!(origin.hyperbolic_distance(&origin), 0.0);
        assert!(origin.hyperbolic_distance(&p) > 0.5);
        let rim = HyperPoint { x: 1.0, y: 0.0 };
        assert!(origin.hyperbolic_distance(&rim).is_infinite());
    }
}
